// Package server exposes a trained DLACEP pipeline over TCP with a
// line-oriented protocol, turning the library into a deployable match
// service (the "evaluation engine" box of the paper's Figure 1).
//
// Protocol (newline-delimited, UTF-8):
//
//	client -> server   TYPE,TS,ATTR1[,ATTR2...]      one event per line
//	server -> client   {"match":{"ids":[...],"binding":{...}}}
//	server -> client   {"summary":{...}}             once, when the client
//	                                                 half-closes or sends "FLUSH"
//
// Each connection runs its own incremental Processor; event IDs are
// assigned per connection in arrival order.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dlacep/internal/cep"
	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
	"dlacep/internal/pattern"
	"dlacep/internal/shard"
)

// filterFactory is one immutable generation of the per-connection filter
// constructor; swaps install a new generation atomically.
type filterFactory struct {
	version int
	fn      func() (core.EventFilter, error)
}

// Server evaluates client streams with a shared model. The model is
// resolved per connection through an atomically swappable filter factory
// (see SwapFilter), so a lifecycle controller can hot-swap the served
// model: new connections pick up the new version, in-flight connections
// finish on the instance they started with.
type Server struct {
	schema *event.Schema
	pats   []*pattern.Pattern
	cfg    core.Config
	// factory holds the current filter constructor. Trained networks cache
	// forward activations and are not goroutine-safe, so each connection
	// gets its own instance; the constructor typically reloads a saved
	// model or wraps shared immutable state. Because network filters own
	// their nn.Scratch inference arena, per-connection instances also mean
	// per-connection arenas: every connection goroutine marks windows
	// through its own allocation-free fast path, with no sharing.
	factory atomic.Pointer[filterFactory]
	// Log receives per-connection diagnostics; defaults to log.Printf.
	Log func(format string, args ...any)
	// Obs, when non-nil, is shared by every connection's pipeline and also
	// receives server-level counters (server.connections.total/active,
	// server.events.total). Expose it via AdminHandler.
	Obs *obs.Registry
	// OnEvent, when non-nil, observes every successfully parsed event from
	// every connection (after per-connection ID assignment, before
	// processing) — the tap a lifecycle controller uses for drift auditing
	// and retraining buffers. It is called from connection goroutines
	// concurrently and must be goroutine-safe and fast. Set before Serve.
	OnEvent func(ev event.Event)
	// Shards, when > 1, serves each connection through the key-sharded
	// pipeline (internal/shard) instead of the sequential Processor: events
	// are hash-partitioned by type onto shard-per-core marking workers and
	// the CEP engines run over the merged, globally ID-ordered relay stream.
	// Matches stream to the client as the merge stage emits them. The filter
	// must be cloneable (every shard owns a clone). Set before Serve.
	Shards int
	// ShardBatch is K, the windows batched per filter call in shard mode
	// (shard.Options.Batch); 0 means 1.
	ShardBatch int
	// Trace, when non-nil, is shared by every connection's pipeline: each
	// connection samples per-window critical-path traces into its bounded
	// ring (deterministic 1-of-stride sampling across the interleaved
	// connections). Expose it via AdminHandler's /traces. Set before Serve.
	Trace *trace.Tracer
	// Board, when non-nil, serves every sequential connection through a
	// mode-switchable core.AdaptiveProcessor instead of the static
	// Processor: an adapt.Controller moving the board's per-pattern levels
	// retunes live connections without draining them. Health then reports
	// the degradation posture. Ignored in shard mode (the sharded path is
	// the filtered rung by construction; it stamps traces with the board's
	// level but does not switch modes). Set before Serve.
	Board *core.LevelBoard
	// NewGates, when non-nil alongside Board, constructs the per-pattern
	// shed gates for one connection (each connection's processor owns its
	// gates, like its filter). Without it, patterns degraded to the
	// shedding rung behave as filtered. Set before Serve.
	NewGates func() []core.Gate

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// New builds a server for the given monitored patterns.
func New(schema *event.Schema, pats []*pattern.Pattern, cfg core.Config,
	newFilter func() (core.EventFilter, error)) (*Server, error) {
	if newFilter == nil {
		return nil, fmt.Errorf("server: nil filter constructor")
	}
	if _, err := core.NewPipeline(schema, pats, cfg, core.KeepAllFilter{}); err != nil {
		return nil, err
	}
	s := &Server{
		schema: schema,
		pats:   pats,
		cfg:    cfg,
		Log:    log.Printf,
		conns:  map[net.Conn]bool{},
	}
	s.factory.Store(&filterFactory{version: 1, fn: newFilter})
	return s, nil
}

// SwapFilter atomically replaces the per-connection filter constructor:
// connections accepted afterwards are built with newFilter, in-flight
// connections keep the filter they started with (no connection is dropped).
// version labels the new generation (Health.ModelVersion reports it). It
// returns the previous generation's version.
func (s *Server) SwapFilter(version int, newFilter func() (core.EventFilter, error)) (prev int, err error) {
	if newFilter == nil {
		return 0, fmt.Errorf("server: nil filter constructor")
	}
	old := s.factory.Swap(&filterFactory{version: version, fn: newFilter})
	return old.version, nil
}

// FilterVersion reports the generation new connections are served with.
func (s *Server) FilterVersion() int { return s.factory.Load().version }

// Serve accepts connections on l until Close is called. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lis = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() { //dlacep:ignore spscowner sanctioned owner spawn: each connection goroutine builds its own shard pipeline and is the sole dispatcher (ring producer) for it
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Log("server: connection %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops accepting and closes active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		return lis.Close()
	}
	return nil
}

// matchMsg and summaryMsg are the server->client wire messages.
type matchMsg struct {
	IDs     []uint64          `json:"ids"`
	Binding map[string]uint64 `json:"binding,omitempty"`
}

type summaryMsg struct {
	Events      int     `json:"events"`
	Relayed     int     `json:"relayed"`
	Matches     int     `json:"matches"`
	FilterRatio float64 `json:"filter_ratio"`
	ThroughputS float64 `json:"events_per_sec"`
}

type wireOut struct {
	Match   *matchMsg   `json:"match,omitempty"`
	Summary *summaryMsg `json:"summary,omitempty"`
	Error   string      `json:"error,omitempty"`
}

func (s *Server) handle(conn net.Conn) error {
	if s.Shards > 1 {
		return s.handleSharded(conn)
	}
	s.Obs.Counter("server.connections.total").Inc()
	activeG := s.Obs.Gauge("server.connections.active")
	activeG.Add(1)
	defer activeG.Add(-1)
	eventsC := s.Obs.Counter("server.events.total")
	// One factory load per connection: the generation this stream runs on.
	filter, err := s.factory.Load().fn()
	if err != nil {
		return err
	}
	pl, err := core.NewPipeline(s.schema, s.pats, s.cfg, filter)
	if err != nil {
		return err
	}
	pl.Obs = s.Obs
	pl.Trace = s.Trace
	var proc interface {
		Push(ev event.Event) ([]*cep.Match, error)
		Flush() ([]*cep.Match, error)
		Result() *core.Result
	}
	if s.Board != nil {
		var gates []core.Gate
		if s.NewGates != nil {
			gates = s.NewGates()
		}
		pl.Board = s.Board
		proc, err = pl.NewAdaptiveProcessor(s.Board, gates)
	} else {
		proc, err = pl.NewProcessor()
	}
	if err != nil {
		return err
	}
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)

	writeErr := func(err error) error {
		_ = enc.Encode(wireOut{Error: err.Error()})
		return w.Flush()
	}
	var nextID uint64
	flushed := false
	finish := func() error {
		if flushed {
			return nil
		}
		flushed = true
		ms, err := proc.Flush()
		if err != nil {
			return writeErr(err)
		}
		for _, m := range ms {
			if err := s.writeMatch(enc, m); err != nil {
				return err
			}
		}
		res := proc.Result()
		_ = enc.Encode(wireOut{Summary: &summaryMsg{
			Events:      res.EventsTotal,
			Relayed:     res.EventsRelayed,
			Matches:     len(res.Matches),
			FilterRatio: res.FilterRatio(),
			ThroughputS: res.Throughput(),
		}})
		return w.Flush()
	}

	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		if line == "FLUSH" {
			if err := finish(); err != nil {
				return err
			}
			continue
		}
		ev, err := s.parseEvent(line, nextID)
		if err != nil {
			return writeErr(err)
		}
		nextID++
		eventsC.Inc()
		if s.OnEvent != nil {
			s.OnEvent(ev)
		}
		ms, err := proc.Push(ev)
		if err != nil {
			return writeErr(err)
		}
		for _, m := range ms {
			if err := s.writeMatch(enc, m); err != nil {
				return err
			}
		}
		if len(ms) > 0 {
			if err := w.Flush(); err != nil {
				return err
			}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	return finish()
}

// handleSharded runs one connection through the key-sharded pipeline.
// Matches arrive on the merge goroutine (shard.Options.OnMatch) while this
// goroutine keeps parsing, so client writes synchronize on a mutex — the
// only lock in shard mode, and off the marking hot path entirely.
func (s *Server) handleSharded(conn net.Conn) error {
	s.Obs.Counter("server.connections.total").Inc()
	activeG := s.Obs.Gauge("server.connections.active")
	activeG.Add(1)
	defer activeG.Add(-1)
	eventsC := s.Obs.Counter("server.events.total")
	filter, err := s.factory.Load().fn()
	if err != nil {
		return err
	}
	pl, err := core.NewPipeline(s.schema, s.pats, s.cfg, filter)
	if err != nil {
		return err
	}
	pl.Obs = s.Obs
	pl.Trace = s.Trace

	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	write := func(msg wireOut) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := enc.Encode(msg); err != nil {
			return err
		}
		return w.Flush()
	}
	sp, err := shard.New(pl, shard.Options{
		Shards: s.Shards,
		Batch:  s.ShardBatch,
		OnMatch: func(m *cep.Match) {
			msg := &matchMsg{IDs: m.IDs()}
			if len(m.Binding) > 0 {
				msg.Binding = make(map[string]uint64, len(m.Binding))
				for alias, e := range m.Binding {
					msg.Binding[alias] = e.ID
				}
			}
			_ = write(wireOut{Match: msg})
		},
	})
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			_, _ = sp.Close() // reader error path: join the shard goroutines
		}
	}()

	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var nextID uint64
	finish := func() error {
		if closed {
			return nil
		}
		closed = true
		res, err := sp.Close()
		if err != nil {
			return write(wireOut{Error: err.Error()})
		}
		return write(wireOut{Summary: &summaryMsg{
			Events:      res.EventsTotal,
			Relayed:     res.EventsRelayed,
			Matches:     len(res.Matches),
			FilterRatio: res.FilterRatio(),
			ThroughputS: res.Throughput(),
		}})
	}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		if line == "FLUSH" {
			if err := finish(); err != nil {
				return err
			}
			continue
		}
		ev, err := s.parseEvent(line, nextID)
		if err != nil {
			return write(wireOut{Error: err.Error()})
		}
		nextID++
		eventsC.Inc()
		if s.OnEvent != nil {
			s.OnEvent(ev)
		}
		if err := sp.Push(ev); err != nil {
			return write(wireOut{Error: err.Error()})
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	return finish()
}

func (s *Server) writeMatch(enc *json.Encoder, m *cep.Match) error {
	msg := &matchMsg{IDs: m.IDs()}
	if len(m.Binding) > 0 {
		msg.Binding = make(map[string]uint64, len(m.Binding))
		for alias, e := range m.Binding {
			msg.Binding[alias] = e.ID
		}
	}
	return enc.Encode(wireOut{Match: msg})
}

// parseEvent parses "TYPE,TS,ATTR1[,ATTR2...]".
func (s *Server) parseEvent(line string, id uint64) (event.Event, error) {
	parts := strings.Split(line, ",")
	if len(parts) < 2+0 {
		return event.Event{}, fmt.Errorf("malformed event %q (want TYPE,TS,ATTRS...)", line)
	}
	if len(parts)-2 != s.schema.Len() {
		return event.Event{}, fmt.Errorf("event %q has %d attributes, schema wants %d", line, len(parts)-2, s.schema.Len())
	}
	ts, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return event.Event{}, fmt.Errorf("bad timestamp in %q: %v", line, err)
	}
	ev := event.Event{ID: id, Type: parts[0], Ts: ts, Attrs: make([]float64, s.schema.Len())}
	for i, f := range parts[2:] {
		if ev.Attrs[i], err = strconv.ParseFloat(f, 64); err != nil {
			return event.Event{}, fmt.Errorf("bad attribute %d in %q: %v", i, line, err)
		}
	}
	return ev, nil
}
