package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"

	"dlacep/internal/event"
)

// Client is a minimal client for the line protocol, used by tests and the
// dlacep-serve example client mode.
type Client struct {
	conn net.Conn
	w    *bufio.Writer
	r    *bufio.Reader
}

// Dial connects to a DLACEP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, w: bufio.NewWriter(conn), r: bufio.NewReader(conn)}, nil
}

// Send transmits one event (the ID is assigned server-side).
func (c *Client) Send(ev event.Event) error {
	parts := []string{ev.Type, strconv.FormatInt(ev.Ts, 10)}
	for _, a := range ev.Attrs {
		parts = append(parts, strconv.FormatFloat(a, 'g', -1, 64))
	}
	if _, err := c.w.WriteString(strings.Join(parts, ",")); err != nil {
		return err
	}
	return c.w.WriteByte('\n')
}

// Sync pushes buffered events to the server without ending the stream —
// what a long-lived streaming client calls between bursts (Send only
// buffers; Flush also asks for the summary).
func (c *Client) Sync() error {
	return c.w.Flush()
}

// Flush asks the server to close the stream logically and emit the summary.
func (c *Client) Flush() error {
	if _, err := c.w.WriteString("FLUSH\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

// Message is one server response: exactly one field is set.
type Message struct {
	Match   *matchMsg
	Summary *summaryMsg
	Err     string
}

// Recv reads the next server message. It flushes any buffered writes first.
func (c *Client) Recv() (*Message, error) {
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var out wireOut
	if err := json.Unmarshal(line, &out); err != nil {
		return nil, fmt.Errorf("server sent malformed message %q: %w", line, err)
	}
	return &Message{Match: out.Match, Summary: out.Summary, Err: out.Error}, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.w.Flush()
	return c.conn.Close()
}

// MatchIDs returns the match's event IDs (nil if not a match message).
func (m *Message) MatchIDs() []uint64 {
	if m.Match == nil {
		return nil
	}
	return m.Match.IDs
}
