package lazy

import (
	"math/rand"
	"reflect"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

var volSchema = event.NewSchema("vol")

func skewedStream(rng *rand.Rand, n int, types []string, weights []float64) *event.Stream {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	events := make([]event.Event, n)
	for i := range events {
		r := rng.Float64() * total
		idx := 0
		for r > weights[idx] {
			r -= weights[idx]
			idx++
		}
		events[i] = event.Event{Type: types[idx], Attrs: []float64{rng.NormFloat64()}}
	}
	return event.NewStream(volSchema, events)
}

func crossCheck(t *testing.T, name string, p *pattern.Pattern, rounds, n int, types []string, weights []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	for r := 0; r < rounds; r++ {
		st := skewedStream(rng, n, types, weights)
		got, _, err := Run(p, st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, _, err := cep.Run(p, st)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := cep.Keys(got), cep.Keys(want); !reflect.DeepEqual(g, w) {
			t.Fatalf("%s round %d: lazy=%v nfa=%v", name, r, g, w)
		}
	}
}

func TestCrossCheckSeq(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 8")
	crossCheck(t, "seq", p, 30, 20, []string{"A", "B", "C", "X"}, []float64{3, 1, 2, 2})
}

func TestCrossCheckSeqConditions(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE 0.5 * a.vol < c.vol AND b.vol < c.vol WITHIN 8")
	crossCheck(t, "seq-cond", p, 30, 20, []string{"A", "B", "C"}, []float64{5, 1, 2})
}

func TestCrossCheckConj(t *testing.T) {
	p := pattern.MustParse("PATTERN CONJ(A a, B b, C c) WITHIN 6")
	crossCheck(t, "conj", p, 30, 16, []string{"A", "B", "C", "X"}, []float64{3, 1, 1, 1})
}

func TestCrossCheckDisj(t *testing.T) {
	p := pattern.MustParse("PATTERN DISJ(SEQ(A a, B b), CONJ(C c, D d)) WITHIN 6")
	crossCheck(t, "disj", p, 30, 18, []string{"A", "B", "C", "D"}, []float64{4, 1, 1, 2})
}

func TestCrossCheckTimeWindow(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 4 TIME")
	rng := rand.New(rand.NewSource(4))
	for r := 0; r < 20; r++ {
		events := make([]event.Event, 16)
		ts := int64(0)
		types := []string{"A", "B", "X"}
		for i := range events {
			ts += int64(rng.Intn(3))
			events[i] = event.Event{Type: types[rng.Intn(3)], Ts: ts, Attrs: []float64{1}}
		}
		st := event.NewStream(volSchema, events)
		got, _, err := Run(p, st)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _ := cep.Run(p, st)
		if g, w := cep.Keys(got), cep.Keys(want); !reflect.DeepEqual(g, w) {
			t.Fatalf("time round %d: lazy=%v nfa=%v", r, g, w)
		}
	}
}

func TestEvaluationOrderRarestFirst(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 10")
	freq := map[string]int{"A": 100, "B": 1, "C": 10}
	en, err := New(p, volSchema, freq)
	if err != nil {
		t.Fatal(err)
	}
	order := en.EvaluationOrder()[0]
	if !reflect.DeepEqual(order, []int{1, 2, 0}) {
		t.Errorf("evaluation order = %v, want [1 2 0] (B, C, A)", order)
	}
}

func TestLazyStoresFewerPartials(t *testing.T) {
	// Rare last element: arrival-order NFA stores many A,B prefixes that
	// never complete; lazy waits for the rare C.
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 20")
	rng := rand.New(rand.NewSource(99))
	st := skewedStream(rng, 400, []string{"A", "B", "C"}, []float64{10, 10, 0.3})
	_, lazyStats, err := Run(p, st)
	if err != nil {
		t.Fatal(err)
	}
	_, nfaStats, err := cep.Run(p, st)
	if err != nil {
		t.Fatal(err)
	}
	if lazyStats.Instances >= nfaStats.Instances {
		t.Errorf("lazy instances %d not fewer than NFA %d on skewed stream",
			lazyStats.Instances, nfaStats.Instances)
	}
}

func TestRejectsUnsupportedOperators(t *testing.T) {
	for _, src := range []string{
		"PATTERN KC(A a) WITHIN 5",
		"PATTERN SEQ(A a, NEG(C c), B b) WITHIN 5",
	} {
		p := pattern.MustParse(src)
		if _, err := New(p, volSchema, map[string]int{}); err == nil {
			t.Errorf("New(%q) accepted unsupported pattern", src)
		}
	}
}

func TestBufferedCounter(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	st := event.NewStream(volSchema, []event.Event{
		{Type: "A", Attrs: []float64{1}},
		{Type: "X", Attrs: []float64{1}},
		{Type: "B", Attrs: []float64{1}},
	})
	_, stats, err := Run(p, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Buffered != 2 { // A and B buffered, X is not a pattern type
		t.Errorf("buffered = %d, want 2", stats.Buffered)
	}
}
