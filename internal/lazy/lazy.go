// Package lazy implements the lazy-evaluation ECEP optimization baseline
// (Kolchinsky, Sharfman & Schuster, DEBS 2015 [41]): events are evaluated in
// ascending order of their type frequency rather than arrival order, so
// partial matches are only instantiated once a rare event has been seen.
// This typically stores far fewer partial matches than arrival-order NFA
// evaluation, at the cost of buffering frequent events.
//
// Supported patterns mirror the Figure 12 comparison: SEQ or CONJ over
// primitives, or DISJ over such sub-patterns.
package lazy

import (
	"fmt"
	"sort"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
	"dlacep/internal/pattern/compile"
)

// Stats counts the lazy engine's work; Instances is the number of partial
// matches created, directly comparable to cep.Stats.Instances.
type Stats struct {
	Events    int
	Instances int64
	Matches   int64
	Buffered  int64
}

// Engine is a lazy-order evaluator over one pattern.
type Engine struct {
	schema *event.Schema
	window pattern.Window
	chains []*chain
	stats  Stats
	// buffers hold recent events per type for lazily binding frequent
	// steps that arrived before the rare trigger.
	buffers  map[string][]*event.Event
	bufTypes map[string]bool
}

// chain is the reordered evaluation plan of one SEQ/CONJ sub-pattern:
// steps[0] is the least frequent primitive.
type chain struct {
	ordered bool            // SEQ semantics between original positions
	prims   []*pattern.Node // original order
	order   []int           // evaluation order: chain step -> original position
	stepOf  []int           // original position -> chain step
	// condsAt[k] holds conditions checkable once steps 0..k are bound;
	// predsAt[k] holds their compiled predicates, index-aligned.
	condsAt [][]pattern.Condition
	predsAt [][]compile.Pred
	// partials[k] holds bindings of steps 0..k.
	partials [][]*partial
}

type partial struct {
	// bound[pos] is the event bound to original position pos (nil if the
	// position's chain step is beyond this partial's depth).
	bound []*event.Event
	minID uint64
	maxID uint64
	minTs int64
	maxTs int64
}

// Option configures engine construction.
type Option func(*engineOpts)

type engineOpts struct {
	interpret bool
	sel       map[string]float64
}

// WithInterpreter evaluates conditions with the tree-walking interpreter
// instead of compiled predicates — the reference arm of the differential
// suite. Typechecking still happens, so both arms reject the same patterns.
func WithInterpreter() Option {
	return func(o *engineOpts) { o.interpret = true }
}

// WithSelectivities refines the evaluation order with measured per-condition
// hit rates keyed by condition string (cep.Engine.CondSelectivities or
// compile.SelectivitiesFromRegistry). A step's effective frequency becomes
// its type frequency times the product of selectivities of the conditions
// local to its alias: a frequent type behind a highly selective local filter
// seeds few partials, so it can safely evaluate early. Conditions without a
// measurement count as selectivity 1 (no effect).
func WithSelectivities(sel map[string]float64) Option {
	return func(o *engineOpts) { o.sel = sel }
}

// New compiles the pattern. Frequencies drive the evaluation order and are
// taken from freq (events per type, e.g. a historical sample's TypeCounts).
// Conditions are typechecked against the schema and compiled to closure
// chains at submission; an unknown attribute is an error here, not a panic
// mid-stream.
func New(p *pattern.Pattern, schema *event.Schema, freq map[string]int, opts ...Option) (*Engine, error) {
	var eo engineOpts
	for _, o := range opts {
		o(&eo)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var subs []*pattern.Node
	switch p.Root.Kind {
	case pattern.KindDisj:
		subs = p.Root.Children
	default:
		subs = []*pattern.Node{p.Root}
	}
	en := &Engine{
		schema:   schema,
		window:   p.Window,
		buffers:  map[string][]*event.Event{},
		bufTypes: map[string]bool{},
	}
	env := compile.EnvOf(p, schema)
	for _, sub := range subs {
		ch, err := buildChain(p, sub, freq, env, eo)
		if err != nil {
			return nil, err
		}
		en.chains = append(en.chains, ch)
		for _, pr := range ch.prims {
			for _, t := range pr.Types {
				en.bufTypes[t] = true
			}
		}
	}
	return en, nil
}

func buildChain(p *pattern.Pattern, sub *pattern.Node, freq map[string]int, env compile.Env, eo engineOpts) (*chain, error) {
	if sub.Kind != pattern.KindSeq && sub.Kind != pattern.KindConj {
		return nil, fmt.Errorf("lazy: unsupported operator %v (want SEQ or CONJ of primitives)", sub.Kind)
	}
	ch := &chain{ordered: sub.Kind == pattern.KindSeq}
	for i, c := range sub.Children {
		if c.Kind != pattern.KindPrim {
			return nil, fmt.Errorf("lazy: child %d is %v, only primitives are supported", i, c.Kind)
		}
		ch.prims = append(ch.prims, c)
	}
	n := len(ch.prims)
	conds := append(append([]pattern.Condition(nil), p.Where...), sub.Where...)
	ch.order = make([]int, n)
	for i := range ch.order {
		ch.order[i] = i
	}
	// Effective per-position frequency: type frequency scaled by the measured
	// selectivity of conditions local to the position's alias. Without
	// measurements every factor is 1 and the order is the classical
	// frequency order.
	weight := func(pos int) float64 {
		f := 0
		for _, t := range ch.prims[pos].Types {
			f += freq[t]
		}
		w := float64(f)
		alias := ch.prims[pos].Alias
		for _, c := range conds {
			local := true
			for _, a := range c.Aliases() {
				if a != alias {
					local = false
					break
				}
			}
			if !local {
				continue
			}
			if s, ok := eo.sel[c.String()]; ok {
				w *= s
			}
		}
		return w
	}
	sort.SliceStable(ch.order, func(a, b int) bool {
		return weight(ch.order[a]) < weight(ch.order[b])
	})
	ch.stepOf = make([]int, n)
	for step, pos := range ch.order {
		ch.stepOf[pos] = step
	}

	// Assign each relevant condition to the chain depth at which all its
	// aliases are bound.
	idxOf := map[string]int{}
	for i, pr := range ch.prims {
		idxOf[pr.Alias] = i
	}
	ch.condsAt = make([][]pattern.Condition, n)
	for _, c := range conds {
		depth, ok := 0, true
		for _, a := range c.Aliases() {
			pos, in := idxOf[a]
			if !in {
				ok = false
				break
			}
			if s := ch.stepOf[pos]; s > depth {
				depth = s
			}
		}
		if ok {
			ch.condsAt[depth] = append(ch.condsAt[depth], c)
		}
	}
	ch.predsAt = make([][]compile.Pred, n)
	for depth, cs := range ch.condsAt {
		preds, err := compile.Conds(cs, env)
		if err != nil {
			return nil, fmt.Errorf("lazy: %w", err)
		}
		if eo.interpret {
			for i, c := range cs {
				preds[i] = compile.Interpreted(c)
			}
		}
		ch.predsAt[depth] = preds
	}
	ch.partials = make([][]*partial, n)
	return ch, nil
}

// Process feeds one event in arrival order.
func (en *Engine) Process(ev event.Event) []*cep.Match {
	en.stats.Events++
	if ev.IsBlank() {
		return nil
	}
	e := new(event.Event)
	*e = ev
	en.pruneBuffers(e)
	var out []*cep.Match
	for _, ch := range en.chains {
		out = en.processChain(ch, e, out)
	}
	if en.bufTypes[e.Type] {
		en.buffers[e.Type] = append(en.buffers[e.Type], e)
		en.stats.Buffered++
	}
	return out
}

func (en *Engine) processChain(ch *chain, e *event.Event, out []*cep.Match) []*cep.Match {
	en.pruneChain(ch, e)
	n := len(ch.prims)
	// The event can bind any chain step whose primitive accepts it — but a
	// step k > 0 only extends existing partials at depth k-1, and step 0
	// creates a fresh partial. After a bind at depth k, buffered events may
	// immediately complete deeper steps (they arrived before e).
	for step := n - 1; step >= 0; step-- {
		pos := ch.order[step]
		if !ch.prims[pos].AcceptsType(e.Type) {
			continue
		}
		if step == 0 {
			if p := en.bindStep(ch, nil, 0, e); p != nil {
				out = en.advance(ch, p, 0, e, out)
			}
			continue
		}
		for _, prev := range ch.partials[step-1] {
			if p := en.bindStep(ch, prev, step, e); p != nil {
				out = en.advance(ch, p, step, e, out)
			}
		}
	}
	return out
}

// advance stores the new partial (or emits it) and chases buffered events
// for the next steps.
func (en *Engine) advance(ch *chain, p *partial, depth int, trigger *event.Event, out []*cep.Match) []*cep.Match {
	n := len(ch.prims)
	if depth == n-1 {
		en.stats.Matches++
		return append(out, en.toMatch(ch, p))
	}
	ch.partials[depth] = append(ch.partials[depth], p)
	nextPos := ch.order[depth+1]
	for _, t := range ch.prims[nextPos].Types {
		for _, be := range en.buffers[t] {
			if be.ID == trigger.ID {
				continue
			}
			if np := en.bindStep(ch, p, depth+1, be); np != nil {
				out = en.advance(ch, np, depth+1, trigger, out)
			}
		}
	}
	return out
}

// bindStep tries to bind event e to chain step `step` extending prev
// (nil for step 0), enforcing distinctness, sequence order, window bounds,
// and the conditions that become checkable at this depth.
func (en *Engine) bindStep(ch *chain, prev *partial, step int, e *event.Event) *partial {
	n := len(ch.prims)
	pos := ch.order[step]
	var p *partial
	if prev == nil {
		p = &partial{bound: make([]*event.Event, n), minID: e.ID, maxID: e.ID, minTs: e.Ts, maxTs: e.Ts}
	} else {
		// distinctness
		for _, b := range prev.bound {
			if b != nil && b.ID == e.ID {
				return nil
			}
		}
		p = &partial{
			bound: append([]*event.Event(nil), prev.bound...),
			minID: min64(prev.minID, e.ID), maxID: max64(prev.maxID, e.ID),
			minTs: minI64(prev.minTs, e.Ts), maxTs: maxI64(prev.maxTs, e.Ts),
		}
	}
	if en.window.Kind == pattern.CountWindow {
		if p.maxID-p.minID > uint64(en.window.Size)-1 {
			return nil
		}
	} else if p.maxTs-p.minTs > en.window.Size {
		return nil
	}
	p.bound[pos] = e
	if ch.ordered {
		// Sequence order between bound original positions.
		for q, b := range p.bound {
			if b == nil || q == pos {
				continue
			}
			if q < pos && b.ID >= e.ID {
				return nil
			}
			if q > pos && b.ID <= e.ID {
				return nil
			}
		}
	}
	look := func(a string) (*event.Event, bool) {
		for q, pr := range ch.prims {
			if pr.Alias == a {
				b := p.bound[q]
				return b, b != nil
			}
		}
		return nil, false
	}
	for _, pr := range ch.predsAt[step] {
		if !pr(en.schema, look) {
			return nil
		}
	}
	en.stats.Instances++
	return p
}

func (en *Engine) toMatch(ch *chain, p *partial) *cep.Match {
	m := &cep.Match{Binding: map[string]*event.Event{}}
	for q, b := range p.bound {
		m.Events = append(m.Events, b)
		m.Binding[ch.prims[q].Alias] = b
	}
	sort.Slice(m.Events, func(i, j int) bool { return m.Events[i].ID < m.Events[j].ID })
	return m
}

func (en *Engine) pruneBuffers(e *event.Event) {
	for t, buf := range en.buffers {
		i := 0
		if en.window.Kind == pattern.CountWindow {
			for i < len(buf) && e.ID-buf[i].ID > uint64(en.window.Size)-1 {
				i++
			}
		} else {
			for i < len(buf) && e.Ts-buf[i].Ts > en.window.Size {
				i++
			}
		}
		if i > 0 {
			en.buffers[t] = buf[i:]
		}
	}
}

func (en *Engine) pruneChain(ch *chain, e *event.Event) {
	for d, ps := range ch.partials {
		kept := ps[:0]
		for _, p := range ps {
			live := false
			if en.window.Kind == pattern.CountWindow {
				live = e.ID-p.minID <= uint64(en.window.Size)-1
			} else {
				live = e.Ts-p.minTs <= en.window.Size
			}
			if live {
				kept = append(kept, p)
			}
		}
		ch.partials[d] = kept
	}
}

// Stats returns accumulated counters.
func (en *Engine) Stats() Stats { return en.stats }

// EvaluationOrder returns, per sub-pattern, the original positions in
// evaluation order (for inspection and tests).
func (en *Engine) EvaluationOrder() [][]int {
	var out [][]int
	for _, ch := range en.chains {
		out = append(out, append([]int(nil), ch.order...))
	}
	return out
}

// Run evaluates the whole stream, deduplicating matches by key. Frequencies
// are measured from the stream itself, as a deployed system would do from
// recent history.
func Run(p *pattern.Pattern, st *event.Stream, opts ...Option) ([]*cep.Match, Stats, error) {
	en, err := New(p, st.Schema, st.TypeCounts(), opts...)
	if err != nil {
		return nil, Stats{}, err
	}
	var matches []*cep.Match
	seen := map[string]bool{}
	for i := range st.Events {
		for _, m := range en.Process(st.Events[i]) {
			if k := m.Key(); !seen[k] {
				seen[k] = true
				matches = append(matches, m)
			}
		}
	}
	return matches, en.Stats(), nil
}

func (s Stats) String() string {
	return fmt.Sprintf("events=%d instances=%d matches=%d buffered=%d", s.Events, s.Instances, s.Matches, s.Buffered)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
