package lazy

import (
	"reflect"
	"testing"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// TestSelectivityRefinesEvaluationOrder: a frequent type behind a highly
// selective local condition seeds fewer partials than a rare unfiltered
// type, so measured selectivities can flip the classical frequency order.
func TestSelectivityRefinesEvaluationOrder(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < -100 AND a.vol < b.vol WITHIN 10")
	schema := event.NewSchema("vol")
	freq := map[string]int{"A": 100, "B": 10}

	base, err := New(p, schema, freq)
	if err != nil {
		t.Fatal(err)
	}
	if got := base.EvaluationOrder(); !reflect.DeepEqual(got, [][]int{{1, 0}}) {
		t.Fatalf("frequency order = %v, want [[1 0]] (rare B first)", got)
	}

	// a.vol < -100 measured to pass 5% of the time: effective frequency of
	// A becomes 100*0.05 = 5 < 10, so A evaluates first. The non-local
	// condition (a.vol < b.vol) must not contribute to either weight.
	sel := map[string]float64{
		p.Where[0].String(): 0.05,
		p.Where[1].String(): 0.01,
	}
	tuned, err := New(p, schema, freq, WithSelectivities(sel))
	if err != nil {
		t.Fatal(err)
	}
	if got := tuned.EvaluationOrder(); !reflect.DeepEqual(got, [][]int{{0, 1}}) {
		t.Errorf("selectivity-informed order = %v, want [[0 1]] (filtered A first)", got)
	}
}
