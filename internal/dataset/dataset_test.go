package dataset

import (
	"math"
	"reflect"
	"testing"

	"dlacep/internal/event"
)

func TestSyntheticShape(t *testing.T) {
	st := Synthetic(3000, 15, 1)
	if st.Len() != 3000 {
		t.Fatalf("len = %d", st.Len())
	}
	counts := st.TypeCounts()
	if len(counts) != 15 {
		t.Fatalf("types = %d, want 15", len(counts))
	}
	// roughly uniform: every type within 3x of expected
	for typ, c := range counts {
		if c < 100 || c > 600 {
			t.Errorf("type %s count %d far from uniform expectation 200", typ, c)
		}
	}
	// attribute approximately standard normal
	sum, sumSq := 0.0, 0.0
	for i := range st.Events {
		v := st.Events[i].Attrs[0]
		sum += v
		sumSq += v * v
	}
	mean := sum / 3000
	variance := sumSq/3000 - mean*mean
	if math.Abs(mean) > 0.1 || math.Abs(variance-1) > 0.15 {
		t.Errorf("attr mean/var = %v/%v, want ~0/1", mean, variance)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(50, 5, 7)
	b := Synthetic(50, 5, 7)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Error("same seed produced different streams")
	}
	c := Synthetic(50, 5, 8)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical streams")
	}
}

func TestTypeNames(t *testing.T) {
	names := TypeNames(28)
	if names[0] != "A" || names[25] != "Z" || names[26] != "T26" {
		t.Errorf("TypeNames = %v...", names[:3])
	}
}

func TestStockPrevalenceOrder(t *testing.T) {
	st := Stock(StockConfig{Events: 30000, Tickers: 100, ZipfS: 1.3, Sigma: 0.2, Seed: 2})
	counts := st.TypeCounts()
	// S1 must dominate S50
	if counts[TickerName(0)] <= counts[TickerName(49)] {
		t.Errorf("prevalence order broken: S1=%d S50=%d", counts[TickerName(0)], counts[TickerName(49)])
	}
	// volumes positive
	for i := range st.Events {
		if st.Events[i].Attrs[0] <= 0 {
			t.Fatalf("non-positive volume at %d", i)
		}
	}
	// timestamps strictly increasing
	for i := 1; i < st.Len(); i++ {
		if st.Events[i].Ts <= st.Events[i-1].Ts {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
}

func TestTopTickers(t *testing.T) {
	got := TopTickers(3)
	if !reflect.DeepEqual(got, []string{"S1", "S2", "S3"}) {
		t.Errorf("TopTickers = %v", got)
	}
}

func TestWindows(t *testing.T) {
	st := Synthetic(105, 3, 1)
	ws := Windows(st, 20)
	if len(ws) != 5 {
		t.Fatalf("windows = %d, want 5 (tail dropped)", len(ws))
	}
	if ws[1][0].ID != 20 {
		t.Errorf("second window starts at ID %d, want 20", ws[1][0].ID)
	}
}

func TestSplitFractionsAndDisjoint(t *testing.T) {
	st := Synthetic(1000, 3, 1)
	ws := Windows(st, 10)
	train, test := Split(ws, 0.7, 3)
	if len(train) != 70 || len(test) != 30 {
		t.Fatalf("split = %d/%d, want 70/30", len(train), len(test))
	}
	seen := map[uint64]bool{}
	for _, w := range train {
		seen[w[0].ID] = true
	}
	for _, w := range test {
		if seen[w[0].ID] {
			t.Fatal("train and test share a window")
		}
	}
}

func TestConcat(t *testing.T) {
	st := Synthetic(40, 3, 1)
	ws := Windows(st, 10)
	joined := Concat(st.Schema, ws[:2])
	if joined.Len() != 20 || joined.Events[10].ID != 10 {
		t.Errorf("concat broken: len=%d", joined.Len())
	}
}

func TestTimeWindowsPadding(t *testing.T) {
	st := Synthetic(100, 3, 1)
	ws := TimeWindows(st, 12, 5)
	total := 0
	for _, w := range ws {
		if len(w) != 12 {
			t.Fatalf("window size %d, want 12 (padded)", len(w))
		}
		real := 0
		for i := range w {
			if !w[i].IsBlank() {
				real++
			}
		}
		if real == 0 {
			t.Fatal("window with no real events")
		}
		total += real
	}
	if total != 100 {
		t.Errorf("real events across windows = %d, want 100", total)
	}
}

func TestPadWindowTruncates(t *testing.T) {
	st := Synthetic(10, 3, 1)
	w := PadWindow(st.Events, 4)
	if len(w) != 4 || w[3].ID != 3 {
		t.Errorf("PadWindow truncation broken: %v", w)
	}
}

func TestPadWindowBlanksDoNotExtendWindow(t *testing.T) {
	st := Synthetic(3, 3, 1)
	w := PadWindow(st.Events, 6)
	for _, e := range w[3:] {
		if !e.IsBlank() || e.ID != 2 {
			t.Errorf("padding event %+v should be blank with last real ID", e)
		}
	}
	_ = event.Blank(0, 0)
}
