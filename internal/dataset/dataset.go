// Package dataset generates the evaluation streams of Section 5.1 and
// slices them into the window samples the filters train on.
//
// Two generators are provided:
//
//   - Synthetic: the paper's synthetic datasets (Table 2 experiments) —
//     event types drawn uniformly from a small alphabet, a single numeric
//     attribute sampled from the standard normal distribution.
//
//   - Stock: a synthetic substitute for the purchased NASDAQ historical
//     dataset (Table 1 experiments). The original data cannot be
//     redistributed; this generator reproduces the statistical properties
//     the experiments depend on: ~2500 ticker identifiers with Zipf-like
//     prevalence (so the paper's T_k "top-k most prevalent identifiers"
//     sets are meaningful), a per-ticker log-normal volume random walk
//     (volume correlations drive predicate selectivity), and monotone
//     timestamps. See DESIGN.md for the substitution rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"dlacep/internal/event"
)

// VolSchema is the single-attribute schema shared by both generators; the
// attribute mirrors the paper's retained stock "volume" field.
func VolSchema() *event.Schema { return event.NewSchema("vol") }

// Synthetic generates n events over nTypes uniformly sampled types named
// "A", "B", ... with a standard-normal vol attribute. The paper uses 15
// possibilities.
func Synthetic(n, nTypes int, seed int64) *event.Stream {
	rng := rand.New(rand.NewSource(seed))
	types := TypeNames(nTypes)
	events := make([]event.Event, n)
	for i := range events {
		events[i] = event.Event{
			Type:  types[rng.Intn(nTypes)],
			Attrs: []float64{rng.NormFloat64()},
		}
	}
	return event.NewStream(VolSchema(), events)
}

// TypeNames returns n synthetic type names: A, B, ..., Z, T26, T27, ...
func TypeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		if i < 26 {
			out[i] = string(rune('A' + i))
		} else {
			out[i] = fmt.Sprintf("T%d", i)
		}
	}
	return out
}

// StockConfig parameterizes the stock-market generator.
type StockConfig struct {
	Events  int
	Tickers int     // number of distinct stock identifiers (paper: >2500)
	ZipfS   float64 // Zipf skew of ticker prevalence (>1)
	Sigma   float64 // volatility of the per-ticker log-volume random walk
	Seed    int64
}

// DefaultStockConfig mirrors the paper's dataset shape at configurable size.
func DefaultStockConfig(n int, seed int64) StockConfig {
	return StockConfig{Events: n, Tickers: 2500, ZipfS: 1.2, Sigma: 0.25, Seed: seed}
}

// Stock generates the synthetic stock stream. Ticker i is named "S<i>" with
// S1 the most prevalent; TopTickers returns prevalence order, so the
// paper's T_k template argument is TopTickers(k).
func Stock(cfg StockConfig) *event.Stream {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Tickers-1))
	logVol := make([]float64, cfg.Tickers)
	for i := range logVol {
		// distinct base volumes per ticker, spread over ~2 decades
		logVol[i] = rng.NormFloat64() * 1.0
	}
	events := make([]event.Event, cfg.Events)
	ts := int64(0)
	for i := range events {
		tick := int(zipf.Uint64())
		logVol[tick] += rng.NormFloat64() * cfg.Sigma
		// keep the walk from drifting away
		logVol[tick] *= 0.995
		ts += 1
		events[i] = event.Event{
			Type:  TickerName(tick),
			Ts:    ts,
			Attrs: []float64{math.Exp(logVol[tick])},
		}
	}
	st := &event.Stream{Schema: VolSchema(), Events: events}
	st.AssignIDs(0)
	return st
}

// TickerName returns the name of prevalence-ranked ticker i (0 = most
// prevalent).
func TickerName(i int) string { return fmt.Sprintf("S%d", i+1) }

// TopTickersBand returns ticker names ranked lo+1..hi by prevalence — the
// paper's T_hi / T_lo set difference.
func TopTickersBand(lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, TickerName(i))
	}
	return out
}

// TopTickers returns the k most prevalent ticker names — the paper's T_k.
func TopTickers(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = TickerName(i)
	}
	return out
}

// Windows slices the stream into consecutive non-overlapping samples of the
// given size, dropping a short tail. Event IDs are preserved, so window
// semantics inside a sample match the global stream.
func Windows(st *event.Stream, size int) [][]event.Event {
	var out [][]event.Event
	for lo := 0; lo+size <= st.Len(); lo += size {
		out = append(out, st.Events[lo:lo+size])
	}
	return out
}

// Split shuffles sample indices with the given seed and splits them into
// train and test portions (the paper uses 70/30).
func Split(samples [][]event.Event, trainFrac float64, seed int64) (train, test [][]event.Event) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(samples))
	cut := int(trainFrac * float64(len(samples)))
	for i, j := range idx {
		if i < cut {
			train = append(train, samples[j])
		} else {
			test = append(test, samples[j])
		}
	}
	return train, test
}

// Concat re-joins samples into one stream (events keep their IDs), used to
// build evaluation streams out of held-out samples.
func Concat(schema *event.Schema, samples [][]event.Event) *event.Stream {
	var events []event.Event
	for _, s := range samples {
		events = append(events, s...)
	}
	return &event.Stream{Schema: schema, Events: events}
}

// TimeWindows simulates time-based windows (Figure 14): the stream is cut
// into windows of random sizes up to maxWindow, and every window is padded
// with blank events to exactly maxWindow, as done during DLACEP training on
// time-based patterns. Padding events reuse the ID/timestamp of the last
// real event so they never extend any window.
func TimeWindows(st *event.Stream, maxWindow int, seed int64) [][]event.Event {
	rng := rand.New(rand.NewSource(seed))
	var out [][]event.Event
	lo := 0
	for lo < st.Len() {
		size := 1 + rng.Intn(maxWindow)
		hi := lo + size
		if hi > st.Len() {
			hi = st.Len()
		}
		out = append(out, PadWindow(st.Events[lo:hi], maxWindow))
		lo = hi
	}
	return out
}

// PadWindow pads a window with blank events up to size.
func PadWindow(events []event.Event, size int) []event.Event {
	if len(events) >= size {
		return events[:size]
	}
	out := append([]event.Event(nil), events...)
	last := events[len(events)-1]
	for len(out) < size {
		out = append(out, event.Blank(last.ID, last.Ts))
	}
	return out
}
