package zstream

import (
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// TestLiveSelectivityChangesPlan closes the feedback loop the planner is
// built for: an engine measures per-condition hit rates while running, the
// measurements merge into the planner's statistics, and the DP picks a
// different join tree than it would under default selectivities.
func TestLiveSelectivityChangesPlan(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE a.vol < b.vol AND b.vol < c.vol WITHIN 30")
	schema := event.NewSchema("vol")
	// a.vol < b.vol holds for one A in ten (highly selective);
	// b.vol < c.vol holds always.
	var events []event.Event
	for i := 0; i < 100; i++ {
		av := 10.0
		if i%10 == 0 {
			av = 0
		}
		events = append(events,
			event.Event{Type: "A", Attrs: []float64{av}},
			event.Event{Type: "B", Attrs: []float64{5}},
			event.Event{Type: "C", Attrs: []float64{100}})
	}
	st := event.NewStream(schema, events)

	base := Statistics{Rate: map[string]float64{"A": 1.0 / 3, "B": 1.0 / 3, "C": 1.0 / 3}}
	before, err := New(p, schema, base)
	if err != nil {
		t.Fatal(err)
	}
	// With both conditions at the default selectivity the DP is symmetric
	// and keeps the first split: join (b c) first.
	if got := before.Plans()[0].Root.String(); got != "(0 (1 2))" {
		t.Fatalf("default plan = %s, want (0 (1 2))", got)
	}

	en, err := cep.New(p, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Events {
		en.Process(st.Events[i])
	}
	live := en.CondSelectivities()
	if sel, ok := live[p.Where[0].String()]; !ok || sel > 0.3 {
		t.Fatalf("measured selectivity of %v = %v (ok=%v), want rare", p.Where[0], sel, ok)
	}
	if sel, ok := live[p.Where[1].String()]; !ok || sel != 1 {
		t.Fatalf("measured selectivity of %v = %v (ok=%v), want 1", p.Where[1], sel, ok)
	}

	after, err := New(p, schema, base.MergeLive(live))
	if err != nil {
		t.Fatal(err)
	}
	// The (a b) join is now known to produce ~no intermediates, so the
	// planner joins it first.
	if got := after.Plans()[0].Root.String(); got != "((0 1) 2)" {
		t.Errorf("live-informed plan = %s, want ((0 1) 2)", got)
	}
}

// TestMergeLiveDoesNotMutateReceiver pins value semantics: planners may hold
// the base statistics across replans.
func TestMergeLiveDoesNotMutateReceiver(t *testing.T) {
	base := Statistics{Sel: map[string]float64{"x": 0.5}}
	merged := base.MergeLive(map[string]float64{"x": 0.1, "y": 0.9})
	if base.Sel["x"] != 0.5 || len(base.Sel) != 1 {
		t.Errorf("receiver mutated: %v", base.Sel)
	}
	if merged.Sel["x"] != 0.1 || merged.Sel["y"] != 0.9 {
		t.Errorf("merged = %v", merged.Sel)
	}
}
