package zstream

import (
	"fmt"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
	"dlacep/internal/pattern/compile"
)

// Stats mirrors cep.Stats: Instances counts intermediate join results, the
// tree-plan analogue of partial matches.
type Stats struct {
	Events    int
	Instances int64
	Matches   int64
}

// Engine evaluates a SEQ/CONJ/DISJ pattern using tree plans.
type Engine struct {
	schema *event.Schema
	window pattern.Window
	trees  []*tree
	stats  Stats
}

type tree struct {
	plan   *Plan
	root   *rnode
	leaves []*rnode
}

// rnode is the runtime mirror of a PlanNode with its result store. preds
// holds the compiled predicates of pn.conds, index-aligned.
type rnode struct {
	pn          *PlanNode
	left, right *rnode
	parent      *rnode
	prim        *pattern.Node // leaves only
	preds       []compile.Pred
	store       []*res
}

type res struct {
	events []*event.Event // sorted by ID
	bind   map[string]*event.Event
	minID  uint64
	maxID  uint64
	minTs  int64
	maxTs  int64
}

// Option configures engine construction.
type Option func(*engineOpts)

type engineOpts struct {
	interpret bool
}

// WithInterpreter evaluates plan conditions with the tree-walking
// interpreter instead of compiled predicates — the reference arm of the
// differential suite. Typechecking still happens, so both arms reject the
// same patterns.
func WithInterpreter() Option {
	return func(o *engineOpts) { o.interpret = true }
}

// New compiles the pattern into tree plans, one per disjunct. Conditions are
// typechecked against the schema and compiled to closure chains at
// submission; an unknown attribute is an error here, not a panic mid-stream.
func New(p *pattern.Pattern, schema *event.Schema, stats Statistics, opts ...Option) (*Engine, error) {
	var eo engineOpts
	for _, o := range opts {
		o(&eo)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var subs []*pattern.Node
	var subWhere [][]pattern.Condition
	switch p.Root.Kind {
	case pattern.KindDisj:
		for _, ch := range p.Root.Children {
			subs = append(subs, ch)
			subWhere = append(subWhere, filterConds(p.Where, ch))
		}
	default:
		subs = append(subs, p.Root)
		subWhere = append(subWhere, p.Where)
	}
	env := compile.EnvOf(p, schema)
	en := &Engine{schema: schema, window: p.Window}
	for i, sub := range subs {
		plan, err := planFor(sub, subWhere[i], p.Window, stats)
		if err != nil {
			return nil, err
		}
		t, err := buildTree(plan, env, eo.interpret)
		if err != nil {
			return nil, err
		}
		en.trees = append(en.trees, t)
	}
	return en, nil
}

// filterConds keeps the conditions whose aliases all belong to sub.
func filterConds(conds []pattern.Condition, sub *pattern.Node) []pattern.Condition {
	in := map[string]bool{}
	for _, pr := range sub.Prims() {
		in[pr.Alias] = true
	}
	var out []pattern.Condition
	for _, c := range conds {
		ok := true
		for _, a := range c.Aliases() {
			if !in[a] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

func buildTree(plan *Plan, env compile.Env, interpret bool) (*tree, error) {
	lower := func(conds []pattern.Condition) ([]compile.Pred, error) {
		if len(conds) == 0 {
			return nil, nil
		}
		preds, err := compile.Conds(conds, env)
		if err != nil {
			return nil, fmt.Errorf("zstream: %w", err)
		}
		if interpret {
			for i, c := range conds {
				preds[i] = compile.Interpreted(c)
			}
		}
		return preds, nil
	}
	t := &tree{plan: plan, leaves: make([]*rnode, len(plan.prims))}
	var build func(pn *PlanNode, parent *rnode) (*rnode, error)
	build = func(pn *PlanNode, parent *rnode) (*rnode, error) {
		rn := &rnode{pn: pn, parent: parent}
		var err error
		if rn.preds, err = lower(pn.conds); err != nil {
			return nil, err
		}
		if pn.IsLeaf() {
			rn.prim = plan.prims[pn.Lo]
			t.leaves[pn.Lo] = rn
			return rn, nil
		}
		if rn.left, err = build(pn.Left, rn); err != nil {
			return nil, err
		}
		if rn.right, err = build(pn.Right, rn); err != nil {
			return nil, err
		}
		return rn, nil
	}
	root, err := build(plan.Root, nil)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Process feeds one event and returns completed matches.
func (en *Engine) Process(ev event.Event) []*cep.Match {
	en.stats.Events++
	if ev.IsBlank() {
		return nil
	}
	e := new(event.Event)
	*e = ev
	var out []*cep.Match
	for _, t := range en.trees {
		en.pruneTree(t, e)
		for _, leaf := range t.leaves {
			if !leaf.prim.AcceptsType(e.Type) {
				continue
			}
			r := &res{
				events: []*event.Event{e},
				bind:   map[string]*event.Event{leaf.prim.Alias: e},
				minID:  e.ID, maxID: e.ID, minTs: e.Ts, maxTs: e.Ts,
			}
			if !en.checkConds(leaf.preds, r) {
				continue
			}
			en.stats.Instances++
			out = en.propagate(t, leaf, r, out)
		}
	}
	return out
}

// propagate inserts r into node's store and joins it up the tree.
func (en *Engine) propagate(t *tree, node *rnode, r *res, out []*cep.Match) []*cep.Match {
	if node.parent == nil {
		en.stats.Matches++
		return append(out, &cep.Match{Events: r.events, Binding: r.bind})
	}
	node.store = append(node.store, r)
	parent := node.parent
	sib := parent.left
	rIsLeft := false
	if sib == node {
		sib = parent.right
		rIsLeft = true
	}
	for _, s := range sib.store {
		var joined *res
		if rIsLeft {
			joined = en.join(t, parent, r, s)
		} else {
			joined = en.join(t, parent, s, r)
		}
		if joined == nil {
			continue
		}
		en.stats.Instances++
		out = en.propagate(t, parent, joined, out)
	}
	return out
}

// join combines a left and right child result under parent semantics.
func (en *Engine) join(t *tree, parent *rnode, l, r *res) *res {
	if t.plan.ordered {
		// SEQ: every left event precedes every right event.
		if l.maxID >= r.minID {
			return nil
		}
	}
	minID, maxID := min64(l.minID, r.minID), max64(l.maxID, r.maxID)
	minTs, maxTs := minI64(l.minTs, r.minTs), maxI64(l.maxTs, r.maxTs)
	if en.window.Kind == pattern.CountWindow {
		if maxID-minID > uint64(en.window.Size)-1 {
			return nil
		}
	} else if maxTs-minTs > en.window.Size {
		return nil
	}
	events := mergeByID(l.events, r.events)
	if events == nil {
		return nil
	}
	bind := make(map[string]*event.Event, len(l.bind)+len(r.bind))
	for k, v := range l.bind {
		bind[k] = v
	}
	for k, v := range r.bind {
		bind[k] = v
	}
	joined := &res{events: events, bind: bind, minID: minID, maxID: maxID, minTs: minTs, maxTs: maxTs}
	if !en.checkConds(parent.preds, joined) {
		return nil
	}
	return joined
}

func (en *Engine) checkConds(preds []compile.Pred, r *res) bool {
	look := func(a string) (*event.Event, bool) {
		e, ok := r.bind[a]
		return e, ok
	}
	for _, p := range preds {
		if !p(en.schema, look) {
			return false
		}
	}
	return true
}

func (en *Engine) pruneTree(t *tree, e *event.Event) {
	var prune func(n *rnode)
	prune = func(n *rnode) {
		kept := n.store[:0]
		for _, r := range n.store {
			live := false
			if en.window.Kind == pattern.CountWindow {
				live = e.ID-r.minID <= uint64(en.window.Size)-1
			} else {
				live = e.Ts-r.minTs <= en.window.Size
			}
			if live {
				kept = append(kept, r)
			}
		}
		n.store = kept
		if n.left != nil {
			prune(n.left)
			prune(n.right)
		}
	}
	prune(t.root)
}

// Stats returns accumulated counters.
func (en *Engine) Stats() Stats { return en.stats }

// Plans returns the chosen plan per disjunct, for inspection and tests.
func (en *Engine) Plans() []*Plan {
	out := make([]*Plan, len(en.trees))
	for i, t := range en.trees {
		out[i] = t.plan
	}
	return out
}

// Run evaluates the whole stream, deduplicating matches by key.
func Run(p *pattern.Pattern, st *event.Stream, stats Statistics, opts ...Option) ([]*cep.Match, Stats, error) {
	en, err := New(p, st.Schema, stats, opts...)
	if err != nil {
		return nil, Stats{}, err
	}
	var matches []*cep.Match
	seen := map[string]bool{}
	for i := range st.Events {
		for _, m := range en.Process(st.Events[i]) {
			if k := m.Key(); !seen[k] {
				seen[k] = true
				matches = append(matches, m)
			}
		}
	}
	return matches, en.Stats(), nil
}

func (s Stats) String() string {
	return fmt.Sprintf("events=%d instances=%d matches=%d", s.Events, s.Instances, s.Matches)
}

func mergeByID(a, b []*event.Event) []*event.Event {
	out := make([]*event.Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID < b[j].ID:
			out = append(out, a[i])
			i++
		case a[i].ID > b[j].ID:
			out = append(out, b[j])
			j++
		default:
			return nil
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
