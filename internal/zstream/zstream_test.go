package zstream

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

var volSchema = event.NewSchema("vol")

func randStream(rng *rand.Rand, n int, types []string, weights []float64) *event.Stream {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	events := make([]event.Event, n)
	for i := range events {
		r := rng.Float64() * total
		idx := 0
		for r > weights[idx] {
			r -= weights[idx]
			idx++
		}
		events[i] = event.Event{Type: types[idx], Attrs: []float64{rng.NormFloat64()}}
	}
	return event.NewStream(volSchema, events)
}

func uniform(types []string) []float64 {
	w := make([]float64, len(types))
	for i := range w {
		w[i] = 1
	}
	return w
}

func crossCheck(t *testing.T, name string, p *pattern.Pattern, rounds, n int, types []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	for r := 0; r < rounds; r++ {
		st := randStream(rng, n, types, uniform(types))
		stats := EstimateStatistics(p, st, 200, 5)
		got, _, err := Run(p, st, stats)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, _, err := cep.Run(p, st)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := cep.Keys(got), cep.Keys(want); !reflect.DeepEqual(g, w) {
			t.Fatalf("%s round %d: zstream=%v nfa=%v", name, r, g, w)
		}
	}
}

func TestCrossCheckSeq(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c, D d) WITHIN 8")
	crossCheck(t, "seq4", p, 25, 24, []string{"A", "B", "C", "D", "X"})
}

func TestCrossCheckSeqConditions(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE 0.5 * a.vol < c.vol AND b.vol < c.vol WITHIN 8")
	crossCheck(t, "seq-cond", p, 25, 20, []string{"A", "B", "C"})
}

func TestCrossCheckConj(t *testing.T) {
	p := pattern.MustParse("PATTERN CONJ(A a, B b, C c) WITHIN 6")
	crossCheck(t, "conj", p, 25, 18, []string{"A", "B", "C", "X"})
}

func TestCrossCheckDisj(t *testing.T) {
	p := pattern.MustParse("PATTERN DISJ(SEQ(A a, B b), SEQ(C c, D d)) WHERE a.vol < b.vol WITHIN 6")
	crossCheck(t, "disj", p, 25, 20, []string{"A", "B", "C", "D"})
}

func TestCrossCheckTimeWindow(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 4 TIME")
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 20; r++ {
		events := make([]event.Event, 16)
		ts := int64(0)
		types := []string{"A", "B", "X"}
		for i := range events {
			ts += int64(rng.Intn(3))
			events[i] = event.Event{Type: types[rng.Intn(3)], Ts: ts, Attrs: []float64{1}}
		}
		st := event.NewStream(volSchema, events)
		got, _, err := Run(p, st, Statistics{Rate: map[string]float64{}, Sel: map[string]float64{}})
		if err != nil {
			t.Fatal(err)
		}
		want, _, _ := cep.Run(p, st)
		if g, w := cep.Keys(got), cep.Keys(want); !reflect.DeepEqual(g, w) {
			t.Fatalf("time round %d: zstream=%v nfa=%v", r, g, w)
		}
	}
}

func TestPlanPrefersSelectiveJoinFirst(t *testing.T) {
	// Leaves: A is rare, B and C are common; a selective condition links
	// B and C. The DP should join (B C) first rather than (A B).
	p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WHERE 0.9 * b.vol < c.vol < 1.1 * b.vol WITHIN 100")
	stats := Statistics{
		Rate: map[string]float64{"A": 0.01, "B": 0.4, "C": 0.4},
		Sel:  map[string]float64{p.Where[0].String(): 0.01, p.Where[1].String(): 0.01},
	}
	en, err := New(p, volSchema, stats)
	if err != nil {
		t.Fatal(err)
	}
	plan := en.Plans()[0]
	if got := plan.Root.String(); got != "(0 (1 2))" {
		t.Errorf("plan = %s, want (0 (1 2))", got)
	}
}

func TestPlanCostMonotonicInWindow(t *testing.T) {
	stats := Statistics{Rate: map[string]float64{"A": 0.3, "B": 0.3, "C": 0.3}, Sel: map[string]float64{}}
	mk := func(w int) float64 {
		p := pattern.MustParse("PATTERN SEQ(A a, B b, C c) WITHIN 10")
		p.Window = pattern.Count(w)
		plan, err := planFor(p.Root, p.Where, p.Window, stats)
		if err != nil {
			t.Fatal(err)
		}
		return plan.Root.Cost
	}
	if !(mk(10) < mk(50) && mk(50) < mk(200)) {
		t.Errorf("plan cost not monotone in window: %v %v %v", mk(10), mk(50), mk(200))
	}
}

func TestEstimateStatistics(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 10")
	events := make([]event.Event, 400)
	rng := rand.New(rand.NewSource(1))
	for i := range events {
		typ := "A"
		if i%2 == 1 {
			typ = "B"
		}
		events[i] = event.Event{Type: typ, Attrs: []float64{rng.NormFloat64()}}
	}
	st := event.NewStream(volSchema, events)
	stats := EstimateStatistics(p, st, 2000, 9)
	if math.Abs(stats.Rate["A"]-0.5) > 0.01 || math.Abs(stats.Rate["B"]-0.5) > 0.01 {
		t.Errorf("rates = %v, want ~0.5 each", stats.Rate)
	}
	sel := stats.Sel[p.Where[0].String()]
	if math.Abs(sel-0.5) > 0.1 {
		t.Errorf("selectivity of a.vol<b.vol = %v, want ~0.5", sel)
	}
}

func TestRejectsUnsupportedOperators(t *testing.T) {
	for _, src := range []string{
		"PATTERN KC(A a) WITHIN 5",
		"PATTERN SEQ(A a, KC(B b)) WITHIN 5",
		"PATTERN SEQ(A a, NEG(C c), B b) WITHIN 5",
	} {
		p := pattern.MustParse(src)
		if _, err := New(p, volSchema, Statistics{Rate: map[string]float64{}}); err == nil {
			t.Errorf("New(%q) accepted unsupported pattern", src)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WITHIN 10")
	st := event.NewStream(volSchema, []event.Event{
		{Type: "A", Attrs: []float64{1}},
		{Type: "A", Attrs: []float64{1}},
		{Type: "B", Attrs: []float64{1}},
	})
	_, stats, err := Run(p, st, Statistics{Rate: map[string]float64{}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 3 {
		t.Errorf("events = %d", stats.Events)
	}
	// leaf results: 2 A + 1 B; joins: 2 matches. total 5.
	if stats.Instances != 5 {
		t.Errorf("instances = %d, want 5", stats.Instances)
	}
	if stats.Matches != 2 {
		t.Errorf("matches = %d, want 2", stats.Matches)
	}
}
