// Package zstream implements the ZStream ECEP optimization baseline
// (Mei & Madden, SIGMOD 2009 [54]): tree-based evaluation plans for
// sequence/conjunction patterns, chosen by a dynamic-programming search over
// a CPU cost model driven by measured arrival rates and predicate
// selectivities.
//
// DLACEP's Figure 12 compares against this baseline on SEQ, CONJ, and
// DISJ-of-SEQ patterns; accordingly the package supports patterns whose
// root is SEQ or CONJ over primitives, or DISJ over such sub-patterns.
// Kleene closure and negation are out of scope here (they are exercised by
// the NFA engine in internal/cep).
package zstream

import (
	"fmt"
	"math"
	"math/rand"

	"dlacep/internal/event"
	"dlacep/internal/pattern"
)

// Statistics holds the stream statistics consumed by the cost model.
type Statistics struct {
	// Rate maps an event type to its arrival probability (fraction of
	// stream events of this type).
	Rate map[string]float64
	// Sel maps a condition (by its String rendering) to its estimated
	// selectivity in [0, 1].
	Sel map[string]float64
}

// DefaultSelectivity is assumed for conditions with no measured estimate.
const DefaultSelectivity = 0.5

// EstimateStatistics measures rates and Monte-Carlo condition selectivities
// from a sample stream. sampleSize bounds the number of random event pairs
// drawn per condition.
func EstimateStatistics(p *pattern.Pattern, st *event.Stream, sampleSize int, seed int64) Statistics {
	stats := Statistics{Rate: map[string]float64{}, Sel: map[string]float64{}}
	if st.Len() == 0 {
		return stats
	}
	for t, c := range st.TypeCounts() {
		stats.Rate[t] = float64(c) / float64(st.Len())
	}
	byType := map[string][]*event.Event{}
	for i := range st.Events {
		e := &st.Events[i]
		byType[e.Type] = append(byType[e.Type], e)
	}
	aliasTypes := map[string][]string{}
	for _, pr := range p.Prims() {
		aliasTypes[pr.Alias] = pr.Types
	}
	rng := rand.New(rand.NewSource(seed))
	draw := func(alias string) *event.Event {
		types := aliasTypes[alias]
		var pool []*event.Event
		for _, t := range types {
			pool = append(pool, byType[t]...)
		}
		if len(pool) == 0 {
			return nil
		}
		return pool[rng.Intn(len(pool))]
	}
	for _, c := range p.Where {
		aliases := c.Aliases()
		hit, n := 0, 0
		for i := 0; i < sampleSize; i++ {
			bind := map[string]*event.Event{}
			ok := true
			for _, a := range aliases {
				e := draw(a)
				if e == nil {
					ok = false
					break
				}
				bind[a] = e
			}
			if !ok {
				continue
			}
			n++
			if c.Eval(st.Schema, func(a string) (*event.Event, bool) { e, ok := bind[a]; return e, ok }) {
				hit++
			}
		}
		if n > 0 {
			stats.Sel[c.String()] = float64(hit) / float64(n)
		}
	}
	return stats
}

// MergeLive overlays measured selectivities (e.g. cep.Engine.
// CondSelectivities or compile.SelectivitiesFromRegistry, both keyed by
// condition string) onto s, returning a new Statistics. Live measurements
// win over prior estimates: they reflect the bindings the engine actually
// evaluated, not a Monte-Carlo draw over independent events. The receiver
// is not modified.
func (s Statistics) MergeLive(live map[string]float64) Statistics {
	out := Statistics{Rate: s.Rate, Sel: map[string]float64{}}
	for k, v := range s.Sel {
		out.Sel[k] = v
	}
	for k, v := range live {
		out.Sel[k] = v
	}
	return out
}

func (s Statistics) selectivity(c pattern.Condition) float64 {
	if v, ok := s.Sel[c.String()]; ok {
		return v
	}
	if fn, ok := c.(pattern.Fn); ok && fn.Sel > 0 {
		return fn.Sel
	}
	return DefaultSelectivity
}

// PlanNode is one node of a binary evaluation tree over the leaf span
// [Lo, Hi] (inclusive leaf indices).
type PlanNode struct {
	Lo, Hi      int
	Left, Right *PlanNode // nil for leaves
	// Cost is the estimated number of intermediate results produced in one
	// window by this subtree (the ZStream CPU cost proxy).
	Cost float64
	// conds are evaluated when this node joins its children.
	conds []pattern.Condition
}

// IsLeaf reports whether the node covers a single primitive.
func (n *PlanNode) IsLeaf() bool { return n.Left == nil }

// String renders the join structure, e.g. "((0 1) (2 3))".
func (n *PlanNode) String() string {
	if n.IsLeaf() {
		return fmt.Sprintf("%d", n.Lo)
	}
	return fmt.Sprintf("(%v %v)", n.Left, n.Right)
}

// Plan is a complete evaluation plan for one SEQ/CONJ sub-pattern.
type Plan struct {
	Root    *PlanNode
	ordered bool // SEQ: join requires left events before right events
	prims   []*pattern.Node
	conds   []pattern.Condition
}

// planFor runs the ZStream dynamic program: among all binary trees over
// contiguous leaf spans, pick the one minimizing the total number of
// intermediate results, estimated from rates and selectivities over a
// window of W events.
func planFor(root *pattern.Node, where []pattern.Condition, w pattern.Window, stats Statistics) (*Plan, error) {
	if root.Kind != pattern.KindSeq && root.Kind != pattern.KindConj {
		return nil, fmt.Errorf("zstream: unsupported operator %v (want SEQ or CONJ of primitives)", root.Kind)
	}
	prims := make([]*pattern.Node, len(root.Children))
	for i, ch := range root.Children {
		if ch.Kind != pattern.KindPrim {
			return nil, fmt.Errorf("zstream: child %d is %v, only primitives are supported", i, ch.Kind)
		}
		prims[i] = ch
	}
	conds := append(append([]pattern.Condition(nil), where...), root.Where...)
	idxOf := map[string]int{}
	for i, pr := range prims {
		idxOf[pr.Alias] = i
	}

	n := len(prims)
	wsize := float64(w.Size)
	leafCard := make([]float64, n)
	for i, pr := range prims {
		rate := 0.0
		for _, t := range pr.Types {
			rate += stats.Rate[t]
		}
		leafCard[i] = wsize * rate
	}

	// span selectivity: product of selectivities of conditions fully inside
	// [i..j]; for SEQ the expected fraction of event combinations in the
	// right order is 1/(j-i+1)!.
	condSpan := make([][2]int, len(conds))
	for ci, c := range conds {
		lo, hi := n, -1
		for _, a := range c.Aliases() {
			idx, ok := idxOf[a]
			if !ok {
				return nil, fmt.Errorf("zstream: condition %v references alias %q outside the pattern", c, a)
			}
			if idx < lo {
				lo = idx
			}
			if idx > hi {
				hi = idx
			}
		}
		condSpan[ci] = [2]int{lo, hi}
	}
	card := func(lo, hi int) float64 {
		c := 1.0
		for i := lo; i <= hi; i++ {
			c *= leafCard[i]
		}
		for ci, sp := range condSpan {
			if sp[0] >= lo && sp[1] <= hi {
				c *= stats.selectivity(conds[ci])
			}
		}
		if root.Kind == pattern.KindSeq {
			c /= fact(hi - lo + 1)
		}
		return c
	}

	type cell struct {
		cost  float64
		split int
	}
	dp := make([][]cell, n)
	for i := range dp {
		dp[i] = make([]cell, n)
		dp[i][i] = cell{cost: 0, split: -1}
	}
	for span := 2; span <= n; span++ {
		for lo := 0; lo+span-1 < n; lo++ {
			hi := lo + span - 1
			best := cell{cost: math.Inf(1)}
			for k := lo; k < hi; k++ {
				c := dp[lo][k].cost + dp[k+1][hi].cost + card(lo, hi)
				if c < best.cost {
					best = cell{cost: c, split: k}
				}
			}
			dp[lo][hi] = best
		}
	}

	var build func(lo, hi int) *PlanNode
	build = func(lo, hi int) *PlanNode {
		node := &PlanNode{Lo: lo, Hi: hi, Cost: dp[lo][hi].cost}
		if lo == hi {
			node.Cost = card(lo, lo)
			return node
		}
		k := dp[lo][hi].split
		node.Left = build(lo, k)
		node.Right = build(k+1, hi)
		return node
	}
	plan := &Plan{Root: build(0, n-1), ordered: root.Kind == pattern.KindSeq, prims: prims, conds: conds}

	// Attach each condition to the lowest plan node covering its span.
	var attach func(node *PlanNode)
	attach = func(node *PlanNode) {
		for ci, sp := range condSpan {
			if sp[0] < node.Lo || sp[1] > node.Hi {
				continue
			}
			if !node.IsLeaf() && (sp[1] <= node.Left.Hi || sp[0] >= node.Right.Lo) {
				continue // fits in a child; attached deeper
			}
			node.conds = append(node.conds, conds[ci])
		}
		if !node.IsLeaf() {
			attach(node.Left)
			attach(node.Right)
		}
	}
	attach(plan.Root)
	return plan, nil
}

func fact(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}
