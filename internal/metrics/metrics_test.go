package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCountsBasic(t *testing.T) {
	var c Counts
	c.AddLabels([]int{1, 1, 0, 0, 1}, []int{1, 0, 1, 0, 1})
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if p := c.Precision(); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if r := c.Recall(); math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if f := c.F1(); math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", f)
	}
	if fn := c.FNPct(); math.Abs(fn-100.0/3) > 1e-9 {
		t.Errorf("FN%% = %v", fn)
	}
}

func TestCountsEdgeCases(t *testing.T) {
	var c Counts
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("empty counts should give perfect P/R")
	}
	if c.FNPct() != 0 {
		t.Error("empty counts FN% != 0")
	}
	c = Counts{FP: 3}
	if c.Precision() != 0 {
		t.Error("all-FP precision != 0")
	}
	if c.F1() != 0 {
		t.Error("degenerate F1 != 0")
	}
}

func TestF1Property(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Counts{TP: int(tp), FP: int(fp), FN: int(fn)}
		f1 := c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		// F1 lies between min and max of precision and recall
		p, r := c.Precision(), c.Recall()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchSets(t *testing.T) {
	got := map[string]bool{"a": true, "b": true, "c": true}
	want := map[string]bool{"b": true, "c": true, "d": true}
	c := MatchSets(got, want)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 {
		t.Errorf("match set counts = %+v", c)
	}
}

func TestJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if j := Jaccard(a, b); math.Abs(j-1.0/3) > 1e-12 {
		t.Errorf("jaccard = %v, want 1/3", j)
	}
	if j := Jaccard(nil, nil); j != 1 {
		t.Errorf("jaccard of empties = %v, want 1", j)
	}
	if j := Jaccard(a, a); j != 1 {
		t.Errorf("self jaccard = %v", j)
	}
	if j := Jaccard(a, map[string]bool{}); j != 0 {
		t.Errorf("disjoint jaccard = %v", j)
	}
}

func TestThroughputAndGain(t *testing.T) {
	tp := Throughput(1000, 2*time.Second)
	if tp != 500 {
		t.Errorf("throughput = %v", tp)
	}
	if g := Gain(5000, 500); g != 10 {
		t.Errorf("gain = %v", g)
	}
	if Throughput(10, 0) != 0 {
		t.Error("zero elapsed should give 0")
	}
	if Gain(10, 0) != 0 {
		t.Error("zero baseline should give 0")
	}
}

func TestACEPObjective(t *testing.T) {
	// perfect similarity and gain 1 with equal weights: -0.5 - 0.5 = -1
	if f := ACEPObjective(0.5, 0.5, 1, 1); math.Abs(f+1) > 1e-12 {
		t.Errorf("objective = %v, want -1", f)
	}
	// better gain lowers (improves) the objective
	if ACEPObjective(0.5, 0.5, 1, 10) >= ACEPObjective(0.5, 0.5, 1, 1) {
		t.Error("objective not improved by higher gain")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid weights accepted")
		}
	}()
	ACEPObjective(0.7, 0.7, 1, 1)
}
