// Package metrics implements the evaluation measures of the paper:
// precision / recall / F1 over labels or match sets (Section 4.3), the
// false-negative percentage of Figure 11, throughput and throughput gain
// (Section 5.1), and the ACEP objective function F_{M(s),T} of Section 3.1.
package metrics

import (
	"fmt"
	"time"
)

// Counts accumulates a binary confusion matrix.
type Counts struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, gold) pair of binary labels.
func (c *Counts) Add(pred, gold int) {
	switch {
	case pred == 1 && gold == 1:
		c.TP++
	case pred == 1 && gold == 0:
		c.FP++
	case pred == 0 && gold == 1:
		c.FN++
	default:
		c.TN++
	}
}

// AddLabels records two aligned label slices.
func (c *Counts) AddLabels(pred, gold []int) {
	for i := range pred {
		c.Add(pred[i], gold[i])
	}
}

// Precision returns TP/(TP+FP); 1 when nothing was predicted positive.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN); 1 when there are no gold positives.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r <= 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FNPct returns the percentage of gold positives that were missed —
// Figure 11's FN% metric.
func (c Counts) FNPct() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return 100 * float64(c.FN) / float64(c.TP+c.FN)
}

func (c Counts) String() string {
	return fmt.Sprintf("tp=%d fp=%d fn=%d tn=%d P=%.4f R=%.4f F1=%.4f",
		c.TP, c.FP, c.FN, c.TN, c.Precision(), c.Recall(), c.F1())
}

// MatchSets compares an emitted match-key set against the exact one.
func MatchSets(got, want map[string]bool) Counts {
	var c Counts
	for k := range got {
		if want[k] {
			c.TP++
		} else {
			c.FP++
		}
	}
	for k := range want {
		if !got[k] {
			c.FN++
		}
	}
	return c
}

// Jaccard returns |got ∩ want| / |got ∪ want|, the match-set similarity of
// the Section 3.1 objective; 1 when both sets are empty.
func Jaccard(got, want map[string]bool) float64 {
	inter, union := 0, 0
	for k := range got {
		union++
		if want[k] {
			inter++
		}
	}
	for k := range want {
		if !got[k] {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Throughput is events per second over a measured run.
func Throughput(events int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(events) / elapsed.Seconds()
}

// Gain is the throughput ratio t'/t of a mechanism X' over baseline X —
// the paper's headline "throughput gain over ECEP".
func Gain(ours, baseline float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return ours / baseline
}

// ACEPObjective is the example objective of Section 3.1:
//
//	F = -w1·Jaccard(M, M') - w2·(t'/t)
//
// (lower is better). w1+w2 must be 1; the function panics otherwise because
// the weights are static experiment configuration.
func ACEPObjective(w1, w2, jaccard, gain float64) float64 {
	if w1 < 0 || w2 < 0 || w1+w2 < 0.999 || w1+w2 > 1.001 {
		//dlacep:ignore libpanic documented contract: objective weights are static experiment configuration
		panic(fmt.Sprintf("metrics: invalid objective weights %v, %v", w1, w2))
	}
	return -w1*jaccard - w2*gain
}

// Stopwatch measures one wall-clock interval of the pipeline's cost
// decomposition (filter time vs CEP time). It lives here rather than in
// internal/core because the deterministic packages are forbidden — and
// vetted, see cmd/dlacep-vet's globalrand analyzer — from reading the
// wall clock directly: timing is a measurement concern of the
// metrics/harness layer, never an input to match extraction.
type Stopwatch struct{ start time.Time }

// StartStopwatch begins timing an interval.
func StartStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall-clock time since StartStopwatch.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
