package nn

import "math/rand"

// Linear applies y_t = W·x_t + b independently at every timestep.
type Linear struct {
	W *Param // out × in
	B *Param // out × 1

	in, out int
	x       [][]float64 // cache
}

// NewLinear builds a Glorot-initialized dense layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		W:   NewParam("linear.W", out, in),
		B:   NewParam("linear.b", out, 1),
		in:  in,
		out: out,
	}
	l.W.XavierInit(rng)
	return l
}

// Forward computes the per-step affine map. The input is cached for
// Backward only when train is true.
func (l *Linear) Forward(x [][]float64, train bool) [][]float64 {
	mustDims("linear", x, l.in)
	if train {
		l.x = x
	} else {
		l.x = nil
	}
	y := make([][]float64, len(x))
	for t, xt := range x {
		yt := make([]float64, l.out)
		for o := 0; o < l.out; o++ {
			s := l.B.Data[o]
			row := l.W.Data[o*l.in : (o+1)*l.in]
			for i, xi := range xt {
				s += row[i] * xi
			}
			yt[o] = s
		}
		y[t] = yt
	}
	return y
}

// Backward accumulates dW, db and returns dX.
func (l *Linear) Backward(dY [][]float64) [][]float64 {
	dX := make([][]float64, len(dY))
	for t, dyt := range dY {
		xt := l.x[t]
		dxt := make([]float64, l.in)
		for o := 0; o < l.out; o++ {
			g := dyt[o]
			//dlacep:ignore floatcmp bit-exact zero-gradient skip; an epsilon would alter training numerics
			if g == 0 {
				continue
			}
			l.B.Grad[o] += g
			wRow := l.W.Data[o*l.in : (o+1)*l.in]
			gRow := l.W.Grad[o*l.in : (o+1)*l.in]
			for i, xi := range xt {
				gRow[i] += g * xi
				dxt[i] += g * wRow[i]
			}
		}
		dX[t] = dxt
	}
	return dX
}

// Params returns W and b.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// InDim returns the input feature size.
func (l *Linear) InDim() int { return l.in }

// OutDim returns the output feature size.
func (l *Linear) OutDim() int { return l.out }
