package nn

// MeanPool collapses a sequence (T × D) into a single vector (1 × D) by
// averaging over time. The window-network uses it to reduce the BiLSTM
// hidden sequence to one window representation before its classification
// layer.
type MeanPool struct {
	dim int
	T   int
}

// NewMeanPool builds a pooling layer over feature size dim.
func NewMeanPool(dim int) *MeanPool { return &MeanPool{dim: dim} }

// Forward averages the sequence. An empty window (T=0) yields the zero
// vector: without the guard 1/0 = +Inf and 0·Inf = NaN would silently
// poison the window embedding and every downstream score — and empty
// windows are reachable from the pipeline's tail handling.
func (m *MeanPool) Forward(x [][]float64, train bool) [][]float64 {
	mustDims("meanpool", x, m.dim)
	m.T = len(x)
	out := make([]float64, m.dim)
	if m.T == 0 {
		return [][]float64{out}
	}
	for _, row := range x {
		for i, v := range row {
			out[i] += v
		}
	}
	inv := 1.0 / float64(m.T)
	for i := range out {
		out[i] *= inv
	}
	return [][]float64{out}
}

// Backward spreads the gradient uniformly over the timesteps. The T=0 guard
// mirrors Forward: no timesteps, no gradient (and no 1/0).
func (m *MeanPool) Backward(dY [][]float64) [][]float64 {
	if m.T == 0 {
		return nil
	}
	inv := 1.0 / float64(m.T)
	dX := make([][]float64, m.T)
	for t := range dX {
		row := make([]float64, m.dim)
		for i := range row {
			row[i] = dY[0][i] * inv
		}
		dX[t] = row
	}
	return dX
}

// Params returns nil: pooling has no parameters.
func (m *MeanPool) Params() []*Param { return nil }

// InDim returns the feature size.
func (m *MeanPool) InDim() int { return m.dim }

// OutDim returns the feature size.
func (m *MeanPool) OutDim() int { return m.dim }

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1-P) (inverted dropout); it is the identity at
// inference time.
type Dropout struct {
	P   float64
	dim int
	rng func() float64
	// mask from the last training Forward
	mask [][]bool
	off  bool
}

// NewDropout builds a dropout layer; rng must return uniform [0,1) samples.
func NewDropout(dim int, p float64, rng func() float64) *Dropout {
	return &Dropout{P: p, dim: dim, rng: rng}
}

// Forward applies the mask when train is true. In the off path the input is
// returned as-is — the output aliases x. That is safe under the package's
// layer aliasing contract (layer.go): no layer writes its input in place, so
// a downstream layer can never corrupt the upstream layer's BPTT cache
// through this alias. TestLayerAliasingContract enforces the contract.
func (d *Dropout) Forward(x [][]float64, train bool) [][]float64 {
	d.off = !train || d.P <= 0
	if d.off {
		return x
	}
	scale := 1.0 / (1.0 - d.P)
	out := make([][]float64, len(x))
	d.mask = make([][]bool, len(x))
	for t, row := range x {
		or := make([]float64, len(row))
		mr := make([]bool, len(row))
		for i, v := range row {
			if d.rng() < d.P {
				mr[i] = true
			} else {
				or[i] = v * scale
			}
		}
		out[t] = or
		d.mask[t] = mr
	}
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(dY [][]float64) [][]float64 {
	if d.off {
		return dY
	}
	scale := 1.0 / (1.0 - d.P)
	dX := make([][]float64, len(dY))
	for t, row := range dY {
		dr := make([]float64, len(row))
		for i, v := range row {
			if !d.mask[t][i] {
				dr[i] = v * scale
			}
		}
		dX[t] = dr
	}
	return dX
}

// Params returns nil: dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// InDim returns the feature size.
func (d *Dropout) InDim() int { return d.dim }

// OutDim returns the feature size.
func (d *Dropout) OutDim() int { return d.dim }
