package nn

import (
	"math/rand"
	"testing"
)

// BenchmarkLSTMInfer compares the pre-fast-path forward against the
// inference fast path (scratch arena, fused Wx·X kernel) at paper-default
// width (hidden 75). The naive variant passes train=true because the
// original Forward built the BPTT caches unconditionally (eval mode skipping
// them is part of this change) and no Dropout is present, so the flag does
// not alter the numbers. The naive/fast pair seeds BENCH_nn.json via
// cmd/dlacep-benchjson.
func BenchmarkLSTMInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := &Network{Layers: []Layer{NewLSTM(32, 75, false, rng)}}
	x := randSeq(rng, 64, 32)
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.Forward(x, true)
		}
	})
	b.Run("fast", func(b *testing.B) {
		s := NewScratch()
		net.Infer(x, s) // warm the arena so the loop measures steady state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Infer(x, s)
		}
	})
}

// BenchmarkStackedBiLSTMInfer measures the full filter body (3×BiLSTM-75,
// the paper's default architecture) on one marking window. As above, the
// naive variant runs the cache-building forward the pre-fast-path code
// always executed.
func BenchmarkStackedBiLSTMInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := NewStackedBiLSTM(16, 75, 3, rng)
	net.Layers = append(net.Layers, NewLinear(net.OutDim(), 2, rng))
	x := randSeq(rng, 32, 16)
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.Forward(x, true)
		}
	})
	b.Run("fast", func(b *testing.B) {
		s := NewScratch()
		net.Infer(x, s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Infer(x, s)
		}
	})
}
