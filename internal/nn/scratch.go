package nn

// Scratch is a per-goroutine bump arena backing the inference fast path
// (Network.Infer). All intermediate activations of one forward pass are
// carved out of two flat backing slices — one for float data, one for row
// headers — so that after a warm-up window sized at the steady-state
// high-water mark, marking a window allocates nothing.
//
// Ownership rules:
//
//   - one Scratch per goroutine: a Scratch is not safe for concurrent use,
//     and neither is sharing one between two networks that run concurrently
//     (core filter clones each own a fresh arena for exactly this reason);
//   - slices returned by Network.Infer (and by the per-layer Infer methods)
//     point into the arena and are valid only until the next Infer call on
//     the same Scratch — copy anything that must outlive the window;
//   - a Scratch never shrinks; it grows to the largest window seen and then
//     reuses that capacity forever.
type Scratch struct {
	flat []float64
	fOff int
	rows [][]float64
	rOff int
	mats [][][]float64
	mOff int
}

// NewScratch returns an empty arena; the first inference pass sizes it.
func NewScratch() *Scratch { return &Scratch{} }

// reset rewinds the arena to empty. Called by Network.Infer at the top of
// every window; all previously returned slices become reusable.
func (s *Scratch) reset() {
	s.fOff = 0
	s.rOff = 0
	s.mOff = 0
}

// floats bump-allocates a zeroed length-n slice. When the backing array is
// exhausted the arena grows geometrically: slices handed out earlier in the
// window keep the old backing alive, and from the next window on the larger
// array serves everything without allocating.
func (s *Scratch) floats(n int) []float64 {
	if s.fOff+n > len(s.flat) {
		c := 2 * len(s.flat)
		if c < s.fOff+n {
			c = s.fOff + n
		}
		//dlacep:ignore hotalloc arena growth: geometric, stops at the steady-state high-water mark
		s.flat = make([]float64, c)
		s.fOff = 0
	}
	out := s.flat[s.fOff : s.fOff+n : s.fOff+n]
	s.fOff += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// floatsUninit is floats without the zeroing pass, for buffers whose every
// element the caller overwrites before reading (the fused-projection z, fully
// written output rows, …). Layers that accumulate into — or conditionally
// skip — elements must use floats/matrix instead.
func (s *Scratch) floatsUninit(n int) []float64 {
	if s.fOff+n > len(s.flat) {
		c := 2 * len(s.flat)
		if c < s.fOff+n {
			c = s.fOff + n
		}
		//dlacep:ignore hotalloc arena growth: geometric, stops at the steady-state high-water mark
		s.flat = make([]float64, c)
		s.fOff = 0
	}
	out := s.flat[s.fOff : s.fOff+n : s.fOff+n]
	s.fOff += n
	return out
}

// rowHeaders bump-allocates n row headers (the [][]float64 spine of a
// matrix); the headers are nil until the caller points them at float data.
func (s *Scratch) rowHeaders(n int) [][]float64 {
	if s.rOff+n > len(s.rows) {
		c := 2 * len(s.rows)
		if c < s.rOff+n {
			c = s.rOff + n
		}
		//dlacep:ignore hotalloc arena growth: geometric, stops at the steady-state high-water mark
		s.rows = make([][]float64, c)
		s.rOff = 0
	}
	out := s.rows[s.rOff : s.rOff+n : s.rOff+n]
	s.rOff += n
	for i := range out {
		out[i] = nil
	}
	return out
}

// matHeaders bump-allocates n matrix headers (the [][][]float64 spine of a
// window batch); the headers are nil until the caller points them at
// matrices. Backs the K-window batch path (inferbatch.go).
func (s *Scratch) matHeaders(n int) [][][]float64 {
	if s.mOff+n > len(s.mats) {
		c := 2 * len(s.mats)
		if c < s.mOff+n {
			c = s.mOff + n
		}
		//dlacep:ignore hotalloc arena growth: geometric, stops at the steady-state high-water mark
		s.mats = make([][][]float64, c)
		s.mOff = 0
	}
	out := s.mats[s.mOff : s.mOff+n : s.mOff+n]
	s.mOff += n
	for i := range out {
		out[i] = nil
	}
	return out
}

// matrix bump-allocates a zeroed T×D time-major matrix whose rows share one
// contiguous float block. Each row is capacity-clamped so appending to it can
// never clobber its neighbour.
func (s *Scratch) matrix(T, D int) [][]float64 {
	out := s.rowHeaders(T)
	flat := s.floats(T * D)
	for t := range out {
		out[t] = flat[t*D : (t+1)*D : (t+1)*D]
	}
	return out
}

// matrixUninit is matrix without the zeroing pass — same caller contract as
// floatsUninit: every element must be written before it is read.
func (s *Scratch) matrixUninit(T, D int) [][]float64 {
	out := s.rowHeaders(T)
	flat := s.floatsUninit(T * D)
	for t := range out {
		out[t] = flat[t*D : (t+1)*D : (t+1)*D]
	}
	return out
}
