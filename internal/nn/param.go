// Package nn is a from-scratch, CPU, float64 neural network substrate:
// dense layers, LSTM and bidirectional LSTM with full backpropagation
// through time, sequence pooling, and parameter initialization. It exists
// because DLACEP's filters are stacked-BiLSTM networks (Section 4.3) and
// this repository is stdlib-only; the layer set is exactly what the paper's
// two filter architectures require.
//
// All layers operate on sequences represented as [][]float64 (time-major:
// T rows of feature vectors). Layers cache activations from the most recent
// Forward call and are therefore not safe for concurrent use; training is
// single-goroutine per network, matching the paper's single-core inference
// setup.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is one learnable tensor with its gradient accumulator. Optimizers
// update Data in place from Grad.
type Param struct {
	Name string
	Rows int
	Cols int
	Data []float64
	Grad []float64
}

// NewParam allocates a zero-initialized parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Rows: rows,
		Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
	}
}

// At returns the element at row r, column c.
func (p *Param) At(r, c int) float64 { return p.Data[r*p.Cols+c] }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// XavierInit fills the parameter with Glorot-uniform values.
func (p *Param) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(p.Rows+p.Cols))
	for i := range p.Data {
		p.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// GradNorm returns the L2 norm of the gradients across params.
func GradNorm(params []*Param) float64 {
	s := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGrads rescales all gradients so their global L2 norm is at most max.
// LSTM training is unstable without it.
func ClipGrads(params []*Param, max float64) {
	n := GradNorm(params)
	if n <= max || n <= 0 {
		return
	}
	scale := max / n
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= scale
		}
	}
}

// ScaleGrads multiplies every gradient by s (used to average over a batch).
func ScaleGrads(params []*Param, s float64) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= s
		}
	}
}

// ZeroGrads clears every gradient.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// CountParams returns the total number of scalar parameters, the h of the
// paper's O(h·l) filtration complexity bound.
func CountParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Data)
	}
	return n
}

func sigmoid(x float64) float64 {
	// Numerically stable in both tails.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

//dlacep:coldpath dimension-contract guard; allocates only on the panicking branch
func mustDims(name string, x [][]float64, want int) {
	for t, row := range x {
		if len(row) != want {
			panic(fmt.Sprintf("nn: %s: input step %d has dim %d, want %d", name, t, len(row), want))
		}
	}
}
