package nn

import (
	"math/rand"
	"testing"
)

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := &Network{Layers: []Layer{NewConv1D(3, 4, 3, 1, rng)}}
	gradCheck(t, "conv1d", net, 6)
}

func TestConv1DDilatedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := &Network{Layers: []Layer{NewConv1D(3, 3, 3, 2, rng)}}
	gradCheck(t, "conv1d-dilated", net, 8)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := &Network{Layers: []Layer{NewLinear(3, 4, rng), NewReLU(4)}}
	gradCheck(t, "relu", net, 5)
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	body := &Network{Layers: []Layer{NewConv1D(3, 5, 3, 1, rng), NewReLU(5)}}
	net := &Network{Layers: []Layer{NewResidual(body, rng)}}
	gradCheck(t, "residual-proj", net, 5)

	body2 := &Network{Layers: []Layer{NewConv1D(4, 4, 3, 1, rng)}}
	net2 := &Network{Layers: []Layer{NewResidual(body2, rng)}}
	if net2.Layers[0].(*Residual).Proj != nil {
		t.Error("identity residual got a projection")
	}
	gradCheck(t, "residual-id", net2, 5)
}

func TestTCNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	net := NewTCN(3, 4, 2, 3, rng)
	gradCheck(t, "tcn", net, 7)
}

func TestTCNShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	net := NewTCN(5, 8, 3, 3, rng)
	if net.InDim() != 5 || net.OutDim() != 8 {
		t.Errorf("dims %d/%d", net.InDim(), net.OutDim())
	}
	y := net.Forward(randSeq(rng, 11, 5), false)
	if len(y) != 11 || len(y[0]) != 8 {
		t.Errorf("output %dx%d, want 11x8", len(y), len(y[0]))
	}
}

func TestConv1DPaddingIsZero(t *testing.T) {
	// With a single centered tap of an identity-ish kernel, boundary
	// outputs must not read out of range.
	rng := rand.New(rand.NewSource(27))
	c := NewConv1D(1, 1, 3, 1, rng)
	for i := range c.W.Data {
		c.W.Data[i] = 0
	}
	// kernel layout: [k0 k1 k2] over in=1; set k0 (left neighbor) to 1
	c.W.Data[0] = 1
	x := [][]float64{{10}, {20}, {30}}
	y := c.Forward(x, false)
	// y[t] = x[t-1]; y[0] sees zero padding
	if y[0][0] != 0 || y[1][0] != 10 || y[2][0] != 20 {
		t.Errorf("padding semantics wrong: %v", y)
	}
}

func TestConv1DValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("even kernel", func() { NewConv1D(2, 2, 4, 1, rng) })
	mustPanic("zero dilation", func() { NewConv1D(2, 2, 3, 0, rng) })
}
