package nn

import (
	"math"
	"math/rand"
)

// LSTM is a single-direction long short-term memory layer [31] with full
// backpropagation through time. Gate pre-activations are stored per
// timestep so Backward can run without recomputation. When reverse is true
// the sequence is processed right-to-left (outputs stay aligned with input
// positions), which is how BiLSTM builds its backward half.
type LSTM struct {
	Wx *Param // 4H × In  (gates stacked i,f,g,o)
	Wh *Param // 4H × H
	B  *Param // 4H × 1

	in, hidden int
	reverse    bool

	// caches from the last Forward
	x     [][]float64
	gates [][]float64 // per step: 4H activated gate values (i,f,g,o)
	cells [][]float64 // c_t
	tanhC [][]float64
	hs    [][]float64 // h_t, aligned to input positions
}

// NewLSTM builds an initialized LSTM layer. The forget-gate bias starts at
// 1.0, the standard trick for stable long-range training.
func NewLSTM(in, hidden int, reverse bool, rng *rand.Rand) *LSTM {
	l := &LSTM{
		Wx:      NewParam("lstm.Wx", 4*hidden, in),
		Wh:      NewParam("lstm.Wh", 4*hidden, hidden),
		B:       NewParam("lstm.b", 4*hidden, 1),
		in:      in,
		hidden:  hidden,
		reverse: reverse,
	}
	l.Wx.XavierInit(rng)
	l.Wh.XavierInit(rng)
	for h := 0; h < hidden; h++ {
		l.B.Data[hidden+h] = 1 // forget gate bias
	}
	return l
}

// order returns the timestep visit order.
func (l *LSTM) order(T int) []int {
	idx := make([]int, T)
	for i := range idx {
		if l.reverse {
			idx[i] = T - 1 - i
		} else {
			idx[i] = i
		}
	}
	return idx
}

// Forward runs the recurrence and returns the hidden sequence (T × H).
// With train=false the BPTT caches (input, gate, cell, and tanh-cell
// sequences) are neither built nor retained; Backward is only valid after a
// Forward with train=true.
func (l *LSTM) Forward(x [][]float64, train bool) [][]float64 {
	mustDims("lstm", x, l.in)
	T, H := len(x), l.hidden
	if train {
		l.x = x
		l.gates = make([][]float64, T)
		l.cells = make([][]float64, T)
		l.tanhC = make([][]float64, T)
	} else {
		l.x, l.gates, l.cells, l.tanhC = nil, nil, nil, nil
	}
	hs := make([][]float64, T)
	l.hs = hs

	hPrev := make([]float64, H)
	cPrev := make([]float64, H)
	for _, t := range l.order(T) {
		xt := x[t]
		z := make([]float64, 4*H)
		for r := 0; r < 4*H; r++ {
			s := l.B.Data[r]
			wx := l.Wx.Data[r*l.in : (r+1)*l.in]
			for i, xi := range xt {
				s += wx[i] * xi
			}
			wh := l.Wh.Data[r*H : (r+1)*H]
			for j, hj := range hPrev {
				s += wh[j] * hj
			}
			z[r] = s
		}
		c := make([]float64, H)
		h := make([]float64, H)
		var tc []float64
		if train {
			tc = make([]float64, H)
		}
		for j := 0; j < H; j++ {
			i := sigmoid(z[j])
			f := sigmoid(z[H+j])
			g := math.Tanh(z[2*H+j])
			o := sigmoid(z[3*H+j])
			z[j], z[H+j], z[2*H+j], z[3*H+j] = i, f, g, o
			c[j] = f*cPrev[j] + i*g
			tcj := math.Tanh(c[j])
			if train {
				tc[j] = tcj
			}
			h[j] = o * tcj
		}
		if train {
			l.gates[t] = z
			l.cells[t] = c
			l.tanhC[t] = tc
		}
		hs[t] = h
		hPrev, cPrev = h, c
	}
	return hs
}

// Backward propagates dY (T × H) through time, accumulating parameter
// gradients, and returns dX (T × In).
func (l *LSTM) Backward(dY [][]float64) [][]float64 {
	T, H := len(dY), l.hidden
	dX := make([][]float64, T)
	for t := range dX {
		dX[t] = make([]float64, l.in)
	}
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	order := l.order(T)
	// walk in reverse of the forward visit order
	for k := T - 1; k >= 0; k-- {
		t := order[k]
		var cPrev, hPrev []float64
		if k > 0 {
			cPrev = l.cells[order[k-1]]
			hPrev = l.hs[order[k-1]]
		} else {
			cPrev = make([]float64, H)
			hPrev = make([]float64, H)
		}
		z := l.gates[t]
		dz := make([]float64, 4*H)
		for j := 0; j < H; j++ {
			dh := dY[t][j] + dhNext[j]
			i, f, g, o := z[j], z[H+j], z[2*H+j], z[3*H+j]
			tc := l.tanhC[t][j]
			dc := dh*o*(1-tc*tc) + dcNext[j]
			dz[j] = dc * g * i * (1 - i)
			dz[H+j] = dc * cPrev[j] * f * (1 - f)
			dz[2*H+j] = dc * i * (1 - g*g)
			dz[3*H+j] = dh * tc * o * (1 - o)
			dcNext[j] = dc * f
		}
		for j := range dhNext {
			dhNext[j] = 0
		}
		xt := l.x[t]
		for r := 0; r < 4*H; r++ {
			g := dz[r]
			//dlacep:ignore floatcmp bit-exact zero-gradient skip; an epsilon would alter training numerics
			if g == 0 {
				continue
			}
			l.B.Grad[r] += g
			wxRow := l.Wx.Data[r*l.in : (r+1)*l.in]
			gxRow := l.Wx.Grad[r*l.in : (r+1)*l.in]
			for i, xi := range xt {
				gxRow[i] += g * xi
				dX[t][i] += g * wxRow[i]
			}
			whRow := l.Wh.Data[r*H : (r+1)*H]
			ghRow := l.Wh.Grad[r*H : (r+1)*H]
			for j, hj := range hPrev {
				ghRow[j] += g * hj
				dhNext[j] += g * whRow[j]
			}
		}
	}
	return dX
}

// Params returns Wx, Wh and b.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// InDim returns the input feature size.
func (l *LSTM) InDim() int { return l.in }

// OutDim returns the hidden size.
func (l *LSTM) OutDim() int { return l.hidden }
