package nn

import (
	"math/rand"
	"testing"
)

// requireBatchBitEqual checks every window of a batch result against its
// per-window reference.
func requireBatchBitEqual(t *testing.T, name string, got, want [][][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows, want %d", name, len(got), len(want))
	}
	for w := range want {
		requireBitEqual(t, name, got[w], want[w])
	}
}

// TestInferBatchMatchesForwardBitExact is the batch differential suite: for
// every architecture the pipeline can assemble and every batch shape —
// uniform, ragged, K=1, windows of length 0 and 1 — InferBatch must
// reproduce the naive per-window forward bit for bit.
func TestInferBatchMatchesForwardBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	batches := map[string][]int{
		"k1":          {7},
		"k4-uniform":  {9, 9, 9, 9},
		"k8-uniform":  {5, 5, 5, 5, 5, 5, 5, 5},
		"k4-ragged":   {3, 9, 1, 6},
		"with-empty":  {4, 0, 4},
		"all-empty":   {0, 0},
		"k2-tiny":     {1, 1},
		"k3-one-long": {17, 2, 2},
	}
	for name, net := range inferTestNets(rng) {
		s := NewScratch()
		for bname, lens := range batches {
			xs := make([][][]float64, len(lens))
			want := make([][][]float64, len(lens))
			for w, T := range lens {
				xs[w] = randSeq(rng, T, net.InDim())
				want[w] = net.Forward(xs[w], false)
			}
			got := net.InferBatch(xs, s) // one scratch reused across all batches
			requireBatchBitEqual(t, name+"/"+bname, got, want)
		}
	}
}

// TestInferBatchMatchesInfer pins the batch path to the single-window fast
// path (itself pinned to Forward), so a regression in either shows up as a
// disagreement between the two fast paths too.
func TestInferBatchMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	net := NewStackedBiLSTM(4, 6, 2, rng)
	net.Layers = append(net.Layers, NewLinear(net.OutDim(), 2, rng))
	xs := make([][][]float64, 4)
	want := make([][][]float64, 4)
	s1 := NewScratch()
	for w := range xs {
		xs[w] = randSeq(rng, 11, 4)
		out := net.Infer(xs[w], s1)
		cp := make([][]float64, len(out))
		for ti := range out {
			cp[ti] = append([]float64(nil), out[ti]...)
		}
		want[w] = cp
	}
	got := net.InferBatch(xs, NewScratch())
	requireBatchBitEqual(t, "batch-vs-infer", got, want)
}

// TestInferBatchNilScratchFallsBack checks the nil-arena escape hatch.
func TestInferBatchNilScratchFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	net := NewStackedBiLSTM(3, 4, 1, rng)
	xs := [][][]float64{randSeq(rng, 6, 3), randSeq(rng, 4, 3)}
	want := [][][]float64{net.Forward(xs[0], false), net.Forward(xs[1], false)}
	requireBatchBitEqual(t, "nil-scratch", net.InferBatch(xs, nil), want)
}

// FuzzInferBatchEquivalence derives a random architecture, weights, batch
// size, and (possibly ragged) window lengths from the fuzz input and
// requires bit-exact per-window naive/batch agreement.
func FuzzInferBatchEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(1), uint8(0), uint8(0))
	f.Add(int64(7), uint8(0), uint8(1), uint8(2), uint8(3), uint8(1)) // T=0 windows
	f.Add(int64(9), uint8(1), uint8(5), uint8(3), uint8(7), uint8(2)) // K=8
	f.Add(int64(3), uint8(17), uint8(2), uint8(1), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, tLen, hidden, layers, batch, ragged uint8) {
		T := int(tLen % 24)
		H := int(hidden%7) + 1
		L := int(layers%3) + 1
		K := int(batch%8) + 1
		rng := rand.New(rand.NewSource(seed))
		in := 3
		net := NewStackedBiLSTM(in, H, L, rng)
		net.Layers = append(net.Layers, NewLinear(net.OutDim(), 2, rng))
		xs := make([][][]float64, K)
		want := make([][][]float64, K)
		for w := range xs {
			Tw := T
			if ragged%2 == 1 {
				Tw = (T + w) % 24
			}
			xs[w] = randSeq(rng, Tw, in)
			want[w] = net.Forward(xs[w], false)
		}
		got := net.InferBatch(xs, NewScratch())
		requireBatchBitEqual(t, "fuzz", got, want)
	})
}

// TestNetworkInferBatchZeroAllocs: after one warm-up batch sizes the arena,
// InferBatch must allocate nothing — the shard steady-state loop depends on
// it (CI gates BenchmarkShardLoop/fast with -fail-on-allocs).
func TestNetworkInferBatchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	net := NewStackedBiLSTM(5, 8, 3, rng)
	net.Layers = append(net.Layers, NewLinear(net.OutDim(), 2, rng))
	xs := make([][][]float64, 4)
	for w := range xs {
		xs[w] = randSeq(rng, 20, 5)
	}
	s := NewScratch()
	net.InferBatch(xs, s) // warm-up: grows the arena to its high-water mark
	if allocs := testing.AllocsPerRun(50, func() { net.InferBatch(xs, s) }); allocs != 0 {
		t.Errorf("Network.InferBatch allocates %.1f times per batch in steady state, want 0", allocs)
	}
}

// BenchmarkInferBatch measures what K-window batching buys over K sequential
// fast-path calls at the paper-default filter body (3×BiLSTM-75): the
// recurrence streams Wh once per step for all K windows instead of once per
// (step, window). Both variants are allocation-free; this isolates the
// memory-traffic effect the sharded pipeline's marking loop exploits.
func BenchmarkInferBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := NewStackedBiLSTM(16, 75, 3, rng)
	net.Layers = append(net.Layers, NewLinear(net.OutDim(), 2, rng))
	const K, T = 4, 32
	xs := make([][][]float64, K)
	for w := range xs {
		xs[w] = randSeq(rng, T, 16)
	}
	b.Run("naive", func(b *testing.B) {
		s := NewScratch()
		net.Infer(xs[0], s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				net.Infer(x, s)
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		s := NewScratch()
		net.InferBatch(xs, s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.InferBatch(xs, s)
		}
	})
}
