package nn

import "math/rand"

// Conv1D is a same-length one-dimensional convolution over the time axis
// with symmetric (acausal) zero padding and optional dilation. DLACEP's
// filters see the whole marking window at once, so — unlike streaming
// TCNs — the convolution may look both backward and forward, mirroring
// BiLSTM's bidirectional context.
type Conv1D struct {
	W *Param // out × (in·kernel)
	B *Param // out × 1

	in, out  int
	kernel   int
	dilation int

	x [][]float64 // cache
}

// NewConv1D builds a Glorot-initialized convolution. kernel must be odd so
// the receptive field is centered.
func NewConv1D(in, out, kernel, dilation int, rng *rand.Rand) *Conv1D {
	if kernel%2 == 0 {
		//dlacep:ignore libpanic documented MustCompile-style constructor contract: model architecture is static
		panic("nn: Conv1D kernel must be odd")
	}
	if dilation < 1 {
		//dlacep:ignore libpanic documented MustCompile-style constructor contract: model architecture is static
		panic("nn: Conv1D dilation must be >= 1")
	}
	c := &Conv1D{
		W:        NewParam("conv.W", out, in*kernel),
		B:        NewParam("conv.b", out, 1),
		in:       in,
		out:      out,
		kernel:   kernel,
		dilation: dilation,
	}
	c.W.XavierInit(rng)
	return c
}

// Forward computes the padded convolution; output has the input's length.
// The input is cached for Backward only when train is true.
func (c *Conv1D) Forward(x [][]float64, train bool) [][]float64 {
	mustDims("conv1d", x, c.in)
	if train {
		c.x = x
	} else {
		c.x = nil
	}
	T := len(x)
	half := c.kernel / 2
	y := make([][]float64, T)
	for t := 0; t < T; t++ {
		row := make([]float64, c.out)
		copy(row, c.B.Data)
		for k := 0; k < c.kernel; k++ {
			src := t + (k-half)*c.dilation
			if src < 0 || src >= T {
				continue
			}
			xs := x[src]
			for o := 0; o < c.out; o++ {
				w := c.W.Data[o*c.in*c.kernel+k*c.in : o*c.in*c.kernel+(k+1)*c.in]
				s := 0.0
				for i, xi := range xs {
					s += w[i] * xi
				}
				row[o] += s
			}
		}
		y[t] = row
	}
	return y
}

// Backward accumulates parameter gradients and returns dX.
func (c *Conv1D) Backward(dY [][]float64) [][]float64 {
	T := len(dY)
	half := c.kernel / 2
	dX := make([][]float64, T)
	for t := range dX {
		dX[t] = make([]float64, c.in)
	}
	for t := 0; t < T; t++ {
		dyt := dY[t]
		for o := 0; o < c.out; o++ {
			g := dyt[o]
			//dlacep:ignore floatcmp bit-exact zero-gradient skip; an epsilon would alter training numerics
			if g == 0 {
				continue
			}
			c.B.Grad[o] += g
			for k := 0; k < c.kernel; k++ {
				src := t + (k-half)*c.dilation
				if src < 0 || src >= T {
					continue
				}
				base := o*c.in*c.kernel + k*c.in
				xs := c.x[src]
				for i, xi := range xs {
					c.W.Grad[base+i] += g * xi
					dX[src][i] += g * c.W.Data[base+i]
				}
			}
		}
	}
	return dX
}

// Params returns W and b.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// InDim returns the input feature size.
func (c *Conv1D) InDim() int { return c.in }

// OutDim returns the number of output channels.
func (c *Conv1D) OutDim() int { return c.out }

// ReLU is an elementwise rectifier.
type ReLU struct {
	dim  int
	mask [][]bool
}

// NewReLU builds a rectifier over feature size dim.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// Forward rectifies; the Backward mask is built only when train is true.
func (r *ReLU) Forward(x [][]float64, train bool) [][]float64 {
	mustDims("relu", x, r.dim)
	y := make([][]float64, len(x))
	if train {
		r.mask = make([][]bool, len(x))
	} else {
		r.mask = nil
	}
	for t, row := range x {
		yr := make([]float64, len(row))
		var mr []bool
		if train {
			mr = make([]bool, len(row))
		}
		for i, v := range row {
			if v > 0 {
				yr[i] = v
				if train {
					mr[i] = true
				}
			}
		}
		y[t] = yr
		if train {
			r.mask[t] = mr
		}
	}
	return y
}

// Backward gates the gradient.
func (r *ReLU) Backward(dY [][]float64) [][]float64 {
	dX := make([][]float64, len(dY))
	for t, row := range dY {
		dr := make([]float64, len(row))
		for i, v := range row {
			if r.mask[t][i] {
				dr[i] = v
			}
		}
		dX[t] = dr
	}
	return dX
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// InDim returns the feature size.
func (r *ReLU) InDim() int { return r.dim }

// OutDim returns the feature size.
func (r *ReLU) OutDim() int { return r.dim }

// Residual wraps a body network with an identity (or projected) skip
// connection: y = body(x) + proj(x). TCN blocks rely on it for depth.
type Residual struct {
	Body *Network
	Proj *Linear // nil when dimensions already agree
}

// NewResidual builds a residual block; a projection is added when the body
// changes the feature size.
func NewResidual(body *Network, rng *rand.Rand) *Residual {
	r := &Residual{Body: body}
	if body.InDim() != body.OutDim() {
		r.Proj = NewLinear(body.InDim(), body.OutDim(), rng)
	}
	return r
}

// Forward computes body(x) + skip(x).
func (r *Residual) Forward(x [][]float64, train bool) [][]float64 {
	y := r.Body.Forward(x, train)
	var skip [][]float64
	if r.Proj != nil {
		skip = r.Proj.Forward(x, train)
	} else {
		skip = x
	}
	out := make([][]float64, len(y))
	for t := range y {
		row := make([]float64, len(y[t]))
		for i := range row {
			row[i] = y[t][i] + skip[t][i]
		}
		out[t] = row
	}
	return out
}

// Backward splits the gradient between body and skip paths.
func (r *Residual) Backward(dY [][]float64) [][]float64 {
	dBody := r.Body.Backward(dY)
	var dSkip [][]float64
	if r.Proj != nil {
		dSkip = r.Proj.Backward(dY)
	} else {
		dSkip = dY
	}
	dX := make([][]float64, len(dBody))
	for t := range dBody {
		row := make([]float64, len(dBody[t]))
		for i := range row {
			row[i] = dBody[t][i] + dSkip[t][i]
		}
		dX[t] = row
	}
	return dX
}

// Params returns body and projection parameters.
func (r *Residual) Params() []*Param {
	out := r.Body.Params()
	if r.Proj != nil {
		out = append(out, r.Proj.Params()...)
	}
	return out
}

// InDim returns the block input size.
func (r *Residual) InDim() int { return r.Body.InDim() }

// OutDim returns the block output size.
func (r *Residual) OutDim() int { return r.Body.OutDim() }

// NewTCN builds an acausal temporal convolutional network [45]: residual
// blocks of dilated convolutions with exponentially growing dilation
// (1, 2, 4, ...), each block two conv+ReLU pairs wide. The paper's
// preliminary experiments found stacked BiLSTM superior to TCN for event
// filtering; this constructor exists to reproduce that comparison.
func NewTCN(in, hidden, blocks, kernel int, rng *rand.Rand) *Network {
	n := &Network{}
	dim := in
	dilation := 1
	for b := 0; b < blocks; b++ {
		body := &Network{Layers: []Layer{
			NewConv1D(dim, hidden, kernel, dilation, rng),
			NewReLU(hidden),
			NewConv1D(hidden, hidden, kernel, dilation, rng),
			NewReLU(hidden),
		}}
		n.Layers = append(n.Layers, NewResidual(body, rng))
		dim = hidden
		dilation *= 2
	}
	return n
}
