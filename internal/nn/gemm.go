package nn

// Blocked sequence×matrix kernel for the inference fast path.
//
// The training-oriented layers compute W·x_t one timestep at a time, which
// re-streams the whole weight matrix from memory for every step. At
// inference the input projection has no sequential dependency, so the fast
// path computes it for the entire window in one fused call, tiled so a block
// of weight rows stays cache-resident while it is applied to a block of
// timesteps.
//
// Bit-equality contract: every output element is produced by exactly the
// summation the naive per-step code performs — the bias first, then the
// products w[r][k]·x[t][k] accumulated in ascending k with a single
// accumulator. Tiling only reorders *which element* is computed when, never
// the additions inside one element, so the fused projection is bit-identical
// to the row-by-row reference path on every platform (including those whose
// compilers fuse multiply-adds: both paths present the same expression
// shape).

// Tile sizes: blockR weight rows × blockT timesteps per tile. With float64
// data a 16-row tile of typical filter widths (cols ≤ a few hundred) fits in
// L1 alongside the x rows it is applied to. Inside a tile, each weight row
// is applied to four timesteps at once (register blocking): the four
// accumulators share every w[k] load and give the core four independent
// dependency chains, which is where the kernel beats the per-step reference
// loop — without touching any single element's summation order.
const (
	gemmBlockR = 16
	gemmBlockT = 32
)

// seqMulBias computes y[t][r] = bias[r] + Σ_k w[r*cols+k]·x[t][k] for every
// timestep t and output row r. y must be pre-shaped (len(x) rows of length
// rows); its prior contents are overwritten. w is rows×cols in row-major
// order and every x[t] must have length cols (callers validate via
// mustDims).
//
//dlacep:hotpath
func seqMulBias(y [][]float64, w []float64, rows, cols int, bias []float64, x [][]float64) {
	T := len(x)
	for rb := 0; rb < rows; rb += gemmBlockR {
		rEnd := rb + gemmBlockR
		if rEnd > rows {
			rEnd = rows
		}
		for tb := 0; tb < T; tb += gemmBlockT {
			tEnd := tb + gemmBlockT
			if tEnd > T {
				tEnd = T
			}
			for r := rb; r < rEnd; r++ {
				wr := w[r*cols:][:cols]
				br := bias[r]
				t := tb
				// Six timesteps per pass: six accumulators, each fed one add
				// per k, give six independent FP dependency chains — the
				// per-element summation order is untouched, only the
				// add-latency serialization between elements is broken. Six
				// (not eight) because six row pointers plus six accumulators
				// are the most the register allocator keeps out of memory;
				// wider blocks spill accumulators to the stack and put a
				// store-forward round trip on the critical path.
				for ; t+5 < tEnd; t += 6 {
					x0 := x[t][:cols]
					x1 := x[t+1][:cols]
					x2 := x[t+2][:cols]
					x3 := x[t+3][:cols]
					x4 := x[t+4][:cols]
					x5 := x[t+5][:cols]
					a0, a1, a2 := br, br, br
					a3, a4, a5 := br, br, br
					for k, wk := range wr {
						a0 += wk * x0[k]
						a1 += wk * x1[k]
						a2 += wk * x2[k]
						a3 += wk * x3[k]
						a4 += wk * x4[k]
						a5 += wk * x5[k]
					}
					y[t][r] = a0
					y[t+1][r] = a1
					y[t+2][r] = a2
					y[t+3][r] = a3
					y[t+4][r] = a4
					y[t+5][r] = a5
				}
				for ; t+3 < tEnd; t += 4 {
					x0 := x[t][:cols]
					x1 := x[t+1][:cols]
					x2 := x[t+2][:cols]
					x3 := x[t+3][:cols]
					a0, a1, a2, a3 := br, br, br, br
					// k unrolled by two: each accumulator still receives its
					// products strictly in ascending k, so the per-element
					// summation order — and therefore the result — is
					// unchanged; only loop bookkeeping is halved.
					k := 0
					for ; k < cols-1; k += 2 {
						wk, wk1 := wr[k], wr[k+1]
						a0 += wk * x0[k]
						a0 += wk1 * x0[k+1]
						a1 += wk * x1[k]
						a1 += wk1 * x1[k+1]
						a2 += wk * x2[k]
						a2 += wk1 * x2[k+1]
						a3 += wk * x3[k]
						a3 += wk1 * x3[k+1]
					}
					for ; k < cols; k++ {
						wk := wr[k]
						a0 += wk * x0[k]
						a1 += wk * x1[k]
						a2 += wk * x2[k]
						a3 += wk * x3[k]
					}
					y[t][r] = a0
					y[t+1][r] = a1
					y[t+2][r] = a2
					y[t+3][r] = a3
				}
				for ; t < tEnd; t++ {
					acc := br
					for k, xk := range x[t] {
						acc += wr[k] * xk
					}
					y[t][r] = acc
				}
			}
		}
	}
}
