package nn

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func randInput(rng *rand.Rand, t, dim int) [][]float64 {
	x := make([][]float64, t)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	return x
}

func cloneTestNets(rng *rand.Rand) map[string]*Network {
	bilstm := NewStackedBiLSTM(4, 6, 2, rng)
	bilstm.Layers = append(bilstm.Layers, NewLinear(bilstm.OutDim(), 2, rng))
	tcn := NewTCN(4, 6, 2, 3, rng)
	pooled := NewStackedBiLSTM(4, 5, 1, rng)
	pooled.Layers = append(pooled.Layers, NewMeanPool(pooled.OutDim()), NewLinear(pooled.OutDim(), 1, rng))
	return map[string]*Network{"bilstm": bilstm, "tcn": tcn, "pooled": pooled}
}

// TestCloneForwardMatches checks that a clone computes exactly the original's
// forward pass for every layer combination the pipeline builds.
func TestCloneForwardMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, net := range cloneTestNets(rng) {
		x := randInput(rng, 12, 4)
		want := net.Forward(x, false)
		got := net.Clone().Forward(x, false)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: clone forward differs from original", name)
		}
	}
}

// TestCloneConcurrentForward runs the original and many clones concurrently
// on different inputs and checks each against a sequential reference. Run
// under -race this also proves clones share no scratch state.
func TestCloneConcurrentForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, net := range cloneTestNets(rng) {
		const n = 8
		inputs := make([][][]float64, n)
		want := make([][][]float64, n)
		for i := range inputs {
			inputs[i] = randInput(rng, 10+i, 4)
			want[i] = net.Forward(inputs[i], false)
		}
		got := make([][][]float64, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			f := net
			if i > 0 {
				f = net.Clone()
			}
			wg.Add(1)
			go func(i int, f *Network) {
				defer wg.Done()
				got[i] = f.Forward(inputs[i], false)
			}(i, f)
		}
		wg.Wait()
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s: concurrent forward %d differs from sequential reference", name, i)
			}
		}
	}
}

// TestCloneSharesParams checks the memory contract: parameter tensors are
// shared (a weight update on the original is visible to the clone), while
// scratch state is not.
func TestCloneSharesParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewStackedBiLSTM(3, 4, 1, rng)
	clone := net.Clone()
	orig, cp := net.Params(), clone.Params()
	if len(orig) != len(cp) {
		t.Fatalf("param count differs: %d vs %d", len(orig), len(cp))
	}
	for i := range orig {
		if orig[i] != cp[i] {
			t.Fatalf("param %d not shared", i)
		}
	}
	x := randInput(rng, 5, 3)
	before := net.Forward(x, false)
	orig[0].Data[0] += 0.5
	after := clone.Forward(x, false)
	if reflect.DeepEqual(before, after) {
		t.Fatal("weight update on original not visible through clone")
	}
}

// TestDropoutCloneOwnsNoRNG pins the shard spin-up invariant: a cloned
// Dropout must not share the parent's stateful sampler closure (two shards
// drawing from one rng would race and corrupt the stream). Inference on the
// clone stays the identity; a training forward fails fast on the nil
// sampler instead of silently draining the parent's RNG.
func TestDropoutCloneOwnsNoRNG(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(3, 0.5, rng.Float64)
	c, ok := d.CloneLayer().(*Dropout)
	if !ok {
		t.Fatal("CloneLayer did not return a *Dropout")
	}
	if c.rng != nil {
		t.Fatal("clone shares the parent's rng sampler")
	}
	if c.P != d.P || c.OutDim() != d.OutDim() {
		t.Fatal("clone lost configuration")
	}
	x := randInput(rng, 4, 3)
	if !reflect.DeepEqual(c.Forward(x, false), x) {
		t.Fatal("inference clone is not the identity")
	}
	before := rng.Float64()
	_ = before
	defer func() {
		if recover() == nil {
			t.Fatal("training forward on an rng-less clone did not fail fast")
		}
	}()
	c.Forward(x, true)
}
