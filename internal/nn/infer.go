package nn

import "math"

// Inference fast path. Training forwards allocate per-step buffers and build
// BPTT caches; at marking time DLACEP's filters only ever need the forward
// values, and the filter must stay cheap relative to the CEP engine it
// shields (the whole premise of Section 4's filtration gains). The fast path
// therefore:
//
//   - draws every intermediate activation from a caller-owned Scratch arena,
//     so steady-state window marking allocates nothing;
//   - fuses the LSTM input projection Wx·X over the whole window into one
//     blocked kernel (gemm.go), leaving only the Wh·h recurrence sequential;
//   - writes both BiLSTM direction outputs straight into the halves of the
//     concatenated output rows, eliminating the per-step copy;
//   - never touches the layers' training caches, so a fast-path pass on a
//     clone is race-free against other clones by construction.
//
// Bit-equality contract: Infer performs, per output element, exactly the
// floating-point operations of Forward(x, false) in exactly the same order,
// so fast-path and naive outputs are bit-identical (enforced by the
// differential suite and FuzzInferEquivalence in infer_test.go).

// FastLayer is implemented by layers that provide the allocation-free
// inference path. Infer must compute exactly Forward(x, false) — bit for
// bit — without mutating the layer (training caches included), drawing any
// buffers it needs from s. Returned rows may live in s (valid until the next
// top-level Network.Infer on the same arena) or alias x (identity layers).
type FastLayer interface {
	Layer
	Infer(x [][]float64, s *Scratch) [][]float64
}

// Infer is the inference fast path through the network: one arena reset,
// then every FastLayer runs its allocation-free forward. A nil scratch — or
// a layer predating the fast path — falls back to the naive Forward, so
// Infer is always safe to call. The returned rows are owned by s and are
// overwritten by the next Infer on the same arena.
//
//dlacep:hotpath
func (n *Network) Infer(x [][]float64, s *Scratch) [][]float64 {
	if s == nil {
		//dlacep:coldpath nil-scratch callers opted out of the fast path; the naive Forward allocates by design
		return n.Forward(x, false)
	}
	s.reset()
	return n.infer(x, s)
}

// infer runs the layer chain against an already-reset arena. Nested
// networks (Residual bodies) enter here so the sub-pass shares the window's
// arena instead of resetting it mid-flight.
func (n *Network) infer(x [][]float64, s *Scratch) [][]float64 {
	for _, l := range n.Layers {
		if f, ok := l.(FastLayer); ok {
			x = f.Infer(x, s)
		} else {
			//dlacep:coldpath layers predating the fast path fall back to the allocating naive Forward
			x = l.Forward(x, false)
		}
	}
	return x
}

// Infer runs the recurrence with the fused input projection.
//
//dlacep:hotpath
func (l *LSTM) Infer(x [][]float64, s *Scratch) [][]float64 {
	hs := s.matrixUninit(len(x), l.hidden) // inferInto writes every element
	l.inferInto(x, s, hs)
	return hs
}

// inferInto runs the inference recurrence writing h_t into hs[t]. The rows
// of hs must have length H; BiLSTM passes views into the halves of its
// concatenated output so the merge costs nothing.
func (l *LSTM) inferInto(x [][]float64, s *Scratch, hs [][]float64) {
	mustDims("lstm", x, l.in)
	T, H := len(x), l.hidden
	if T == 0 {
		return
	}
	// Fused input projection: z[t] = b + Wx·x_t for the whole window in one
	// blocked pass. The sequential part below only adds Wh·h_{t-1}.
	z := s.matrixUninit(T, 4*H) // seqMulBias overwrites every element
	seqMulBias(z, l.Wx.Data, 4*H, l.in, l.B.Data, x)
	l.recurInto(z, s, hs)
}

// recurInto runs the sequential half of the recurrence: z already holds
// b + Wx·x_t per step, and each pass adds Wh·h_{t-1}, applies the gates, and
// writes h_t into hs[t]. Split from inferInto so the K-window batch path
// (inferbatch.go) can reuse it on slices of a fused multi-window projection.
func (l *LSTM) recurInto(z [][]float64, s *Scratch, hs [][]float64) {
	T, H := len(z), l.hidden
	hPrev := s.floats(H)
	cPrev := s.floats(H)
	cCur := s.floats(H)
	for step := 0; step < T; step++ {
		t := step
		if l.reverse {
			t = T - 1 - step
		}
		// Add Wh·h_{t-1} with four gate rows per pass over hPrev: the rows
		// share every h_j load and run four independent dependency chains,
		// while each zt[r] still accumulates its own products in ascending j
		// — the same order as the reference loop, so bit-equality holds.
		// Four rows with the j-unroll below measured faster here than wider
		// single-add row blocks (unlike the input projection): the extra
		// weight-row streams cost more than the shorter add chains save.
		// 4H is always a multiple of four, but a scalar tail guards anyway.
		// The re-slicing below ([i:][:H], hPrev[:H], …) only hands the
		// compiler provable lengths so the inner loops run bounds-check-free;
		// it touches no values.
		zt := z[t]
		whData := l.Wh.Data
		hp := hPrev[0:H:H]
		r := 0
		for ; r+3 < 4*H; r += 4 {
			w0 := whData[r*H:][:H]
			w1 := whData[(r+1)*H:][:H]
			w2 := whData[(r+2)*H:][:H]
			w3 := whData[(r+3)*H:][:H]
			a0, a1, a2, a3 := zt[r], zt[r+1], zt[r+2], zt[r+3]
			// j unrolled by two: each accumulator still sums strictly in
			// ascending j, so per-element order (and the result) is unchanged.
			j := 0
			for ; j < H-1; j += 2 {
				hj, hj1 := hp[j], hp[j+1]
				a0 += w0[j] * hj
				a0 += w0[j+1] * hj1
				a1 += w1[j] * hj
				a1 += w1[j+1] * hj1
				a2 += w2[j] * hj
				a2 += w2[j+1] * hj1
				a3 += w3[j] * hj
				a3 += w3[j+1] * hj1
			}
			for ; j < H; j++ {
				hj := hp[j]
				a0 += w0[j] * hj
				a1 += w1[j] * hj
				a2 += w2[j] * hj
				a3 += w3[j] * hj
			}
			zt[r] = a0
			zt[r+1] = a1
			zt[r+2] = a2
			zt[r+3] = a3
		}
		for ; r < 4*H; r++ {
			acc := zt[r]
			wh := whData[r*H:][:H]
			for j, hj := range hp {
				acc += wh[j] * hj
			}
			zt[r] = acc
		}
		ht := hs[t][:H]
		zi, zf := zt[:H], zt[H:][:H]
		zg, zo := zt[2*H:][:H], zt[3*H:][:H]
		cp, cc := cPrev[:H], cCur[:H]
		// sigmoid is hand-inlined here: the compiler declines to inline it
		// (its body contains a call), and in Go's ABI every floating-point
		// register is caller-saved, so each of the three calls per element
		// would spill the loop's live state. The expressions are verbatim
		// copies of sigmoid in param.go — same branches, same operations —
		// so the results stay bit-identical to the reference path.
		for j, zij := range zi {
			var i, f, o float64
			if zij >= 0 {
				e := math.Exp(-zij)
				i = 1 / (1 + e)
			} else {
				e := math.Exp(zij)
				i = e / (1 + e)
			}
			if zfj := zf[j]; zfj >= 0 {
				e := math.Exp(-zfj)
				f = 1 / (1 + e)
			} else {
				e := math.Exp(zfj)
				f = e / (1 + e)
			}
			g := math.Tanh(zg[j])
			if zoj := zo[j]; zoj >= 0 {
				e := math.Exp(-zoj)
				o = 1 / (1 + e)
			} else {
				e := math.Exp(zoj)
				o = e / (1 + e)
			}
			cc[j] = f*cp[j] + i*g
			ht[j] = o * math.Tanh(cc[j])
		}
		hPrev = ht
		cPrev, cCur = cCur, cPrev
	}
}

// Infer runs both directions directly into the halves of the concatenated
// output rows, skipping Forward's per-step copy into a third buffer.
//
//dlacep:hotpath
func (b *BiLSTM) Infer(x [][]float64, s *Scratch) [][]float64 {
	T, H := len(x), b.Fwd.hidden
	out := s.matrixUninit(T, 2*H) // both halves fully written below
	hf := s.rowHeaders(T)
	hb := s.rowHeaders(T)
	for t := range out {
		hf[t] = out[t][:H:H]
		hb[t] = out[t][H:]
	}
	b.Fwd.inferInto(x, s, hf)
	b.Bwd.inferInto(x, s, hb)
	return out
}

// Infer computes the per-step affine map through the blocked kernel.
//
//dlacep:hotpath
func (l *Linear) Infer(x [][]float64, s *Scratch) [][]float64 {
	mustDims("linear", x, l.in)
	y := s.matrixUninit(len(x), l.out) // seqMulBias overwrites every element
	seqMulBias(y, l.W.Data, l.out, l.in, l.B.Data, x)
	return y
}

// Infer averages the sequence into an arena-backed 1×D row. An empty window
// yields the zero vector (same guard as Forward).
//
//dlacep:hotpath
func (m *MeanPool) Infer(x [][]float64, s *Scratch) [][]float64 {
	mustDims("meanpool", x, m.dim)
	out := s.matrix(1, m.dim)
	if len(x) == 0 {
		return out
	}
	row := out[0]
	for _, xt := range x {
		for i, v := range xt {
			row[i] += v
		}
	}
	inv := 1.0 / float64(len(x))
	for i := range row {
		row[i] *= inv
	}
	return out
}

// Infer is the identity: dropout is only active during training. The output
// aliases x, which the layer aliasing contract (layer.go) makes safe.
//
//dlacep:hotpath
func (d *Dropout) Infer(x [][]float64, s *Scratch) [][]float64 { return x }

// Infer computes the padded convolution into arena rows.
//
//dlacep:hotpath
func (c *Conv1D) Infer(x [][]float64, s *Scratch) [][]float64 {
	mustDims("conv1d", x, c.in)
	T := len(x)
	half := c.kernel / 2
	y := s.matrixUninit(T, c.out) // every row starts from a full bias copy
	for t := 0; t < T; t++ {
		row := y[t]
		copy(row, c.B.Data)
		for k := 0; k < c.kernel; k++ {
			src := t + (k-half)*c.dilation
			if src < 0 || src >= T {
				continue
			}
			xs := x[src]
			for o := 0; o < c.out; o++ {
				w := c.W.Data[o*c.in*c.kernel+k*c.in : o*c.in*c.kernel+(k+1)*c.in]
				acc := 0.0
				for i, xi := range xs {
					acc += w[i] * xi
				}
				row[o] += acc
			}
		}
	}
	return y
}

// Infer rectifies into arena rows without building the training mask.
//
//dlacep:hotpath
func (r *ReLU) Infer(x [][]float64, s *Scratch) [][]float64 {
	mustDims("relu", x, r.dim)
	y := s.matrix(len(x), r.dim)
	for t, xt := range x {
		yt := y[t]
		for i, v := range xt {
			if v > 0 {
				yt[i] = v
			}
		}
	}
	return y
}

// Infer computes body(x) + skip(x) with the body sharing the window arena.
//
//dlacep:hotpath
func (r *Residual) Infer(x [][]float64, s *Scratch) [][]float64 {
	y := r.Body.infer(x, s)
	var skip [][]float64
	if r.Proj != nil {
		skip = r.Proj.Infer(x, s)
	} else {
		skip = x
	}
	out := s.matrixUninit(len(y), r.Body.OutDim()) // fully written below
	for t := range y {
		ot, yt, st := out[t], y[t], skip[t]
		for i := range ot {
			ot[i] = yt[i] + st[i]
		}
	}
	return out
}
