package nn

import "math"

// K-window batched inference. The sharded serving pipeline marks K marking
// windows per shard wake-up, and on a single core the win comes from
// amortizing memory traffic, not parallelism:
//
//   - the input projection Wx·X has no sequential dependency across windows
//     either, so the batch path runs one fused seqMulBias over the K·T
//     concatenated rows — each weight-row tile is streamed from memory once
//     per K windows instead of once per window;
//   - the recurrence is sequential *within* a window but independent
//     *across* windows, so the batch path runs it step-major: at step t it
//     applies each Wh row block to all K windows' h_{t-1} while the block is
//     hot in L1. Wh (4H×H floats) is the dominant stream of the per-step
//     loop; step-major order divides that stream by K.
//
// Bit-equality contract: identical to infer.go — for every output element
// the batch path performs exactly the floating-point operations of
// Forward(x, false) in exactly the same order. Batching only reorders which
// (window, element) is computed when; no element's summation order changes.
// Enforced by FuzzInferBatchEquivalence in inferbatch_test.go.

// BatchFastLayer is implemented by layers whose inference fast path can
// process K windows per call. InferBatch must compute, for each xs[i],
// exactly Forward(xs[i], false) bit for bit, without mutating the layer.
// Returned matrices may live in s (valid until the next top-level
// Network.Infer/InferBatch on the same arena) or alias xs entries.
type BatchFastLayer interface {
	FastLayer
	InferBatch(xs [][][]float64, s *Scratch) [][][]float64
}

// InferBatch is the K-window inference fast path: one arena reset, then every
// layer processes the whole batch — in one fused pass where the layer
// implements BatchFastLayer, window-by-window otherwise. A nil scratch falls
// back to the naive Forward per window, so InferBatch is always safe to call.
// Returned matrices are owned by s and are overwritten by the next
// Infer/InferBatch on the same arena.
//
//dlacep:hotpath
func (n *Network) InferBatch(xs [][][]float64, s *Scratch) [][][]float64 {
	if len(xs) == 0 {
		return nil
	}
	if s == nil {
		//dlacep:coldpath nil-scratch callers opted out of the fast path; the fallback allocates by design
		out := make([][][]float64, len(xs))
		for w, x := range xs {
			//dlacep:coldpath nil-scratch fallback marks window-by-window through the naive Forward
			out[w] = n.Forward(x, false)
		}
		return out
	}
	s.reset()
	cur := s.matHeaders(len(xs))
	copy(cur, xs)
	for _, l := range n.Layers {
		if bf, ok := l.(BatchFastLayer); ok {
			cur = bf.InferBatch(cur, s)
			continue
		}
		next := s.matHeaders(len(cur))
		if f, ok := l.(FastLayer); ok {
			for w, x := range cur {
				next[w] = f.Infer(x, s)
			}
		} else {
			for w, x := range cur {
				//dlacep:coldpath layers predating the fast path fall back to the allocating naive Forward
				next[w] = l.Forward(x, false)
			}
		}
		cur = next
	}
	return cur
}

// InferBatch runs the batched recurrence into per-window arena matrices.
//
//dlacep:hotpath
func (l *LSTM) InferBatch(xs [][][]float64, s *Scratch) [][][]float64 {
	hss := s.matHeaders(len(xs))
	for w, x := range xs {
		hss[w] = s.matrixUninit(len(x), l.hidden) // fully written below
	}
	l.inferBatchInto(xs, s, hss)
	return hss
}

// InferBatch runs both directions of every window into the halves of its
// concatenated output rows, then hands each direction the whole batch.
//
//dlacep:hotpath
func (b *BiLSTM) InferBatch(xs [][][]float64, s *Scratch) [][][]float64 {
	H := b.Fwd.hidden
	outs := s.matHeaders(len(xs))
	hfs := s.matHeaders(len(xs))
	hbs := s.matHeaders(len(xs))
	for w, x := range xs {
		T := len(x)
		out := s.matrixUninit(T, 2*H) // both halves fully written below
		hf := s.rowHeaders(T)
		hb := s.rowHeaders(T)
		for t := range out {
			hf[t] = out[t][:H:H]
			hb[t] = out[t][H:]
		}
		outs[w], hfs[w], hbs[w] = out, hf, hb
	}
	b.Fwd.inferBatchInto(xs, s, hfs)
	b.Bwd.inferBatchInto(xs, s, hbs)
	return outs
}

// InferBatch computes the affine map for all windows in one fused kernel
// call; the per-window outputs are views into one contiguous result matrix.
//
//dlacep:hotpath
func (l *Linear) InferBatch(xs [][][]float64, s *Scratch) [][][]float64 {
	total := 0
	for _, x := range xs {
		mustDims("linear", x, l.in)
		total += len(x)
	}
	rows := s.rowHeaders(total)
	off := 0
	for _, x := range xs {
		off += copy(rows[off:], x)
	}
	y := s.matrixUninit(total, l.out) // seqMulBias overwrites every element
	seqMulBias(y, l.W.Data, l.out, l.in, l.B.Data, rows)
	outs := s.matHeaders(len(xs))
	off = 0
	for w, x := range xs {
		outs[w] = y[off : off+len(x) : off+len(x)]
		off += len(x)
	}
	return outs
}

// InferBatch is the identity: dropout is only active during training.
//
//dlacep:hotpath
func (d *Dropout) InferBatch(xs [][][]float64, s *Scratch) [][][]float64 { return xs }

// inferBatchInto runs the K-window recurrence writing window w's h_t into
// hss[w][t]. The input projection is fused across all windows regardless of
// their lengths; the step-major recurrence needs a shared step counter, so a
// ragged batch falls back to per-window recurrences over its slice of the
// fused projection (still saving the projection's weight re-streaming).
func (l *LSTM) inferBatchInto(xs [][][]float64, s *Scratch, hss [][][]float64) {
	K := len(xs)
	if K == 0 {
		return
	}
	H := l.hidden
	total := 0
	T := len(xs[0])
	uniform := true
	for _, x := range xs {
		mustDims("lstm", x, l.in)
		total += len(x)
		if len(x) != T {
			uniform = false
		}
	}
	if total == 0 {
		return
	}
	// Fused input projection over the concatenated batch: window w's steps
	// occupy rows [off_w, off_w+T_w) of z, in window order.
	rows := s.rowHeaders(total)
	off := 0
	for _, x := range xs {
		off += copy(rows[off:], x)
	}
	z := s.matrixUninit(total, 4*H) // seqMulBias overwrites every element
	seqMulBias(z, l.Wx.Data, 4*H, l.in, l.B.Data, rows)
	if !uniform || T == 0 || K == 1 {
		off = 0
		for w, x := range xs {
			l.recurInto(z[off:off+len(x)], s, hss[w])
			off += len(x)
		}
		return
	}
	// Step-major batched recurrence. At each step, phase 1 adds Wh·h_{t-1}
	// for every window with the weight-row block loaded once, then phase 2
	// applies the gates window-by-window. Per (window, element) the operations
	// and their order are verbatim those of recurInto (infer.go), so the
	// result is bit-identical; only the window interleaving differs.
	whData := l.Wh.Data
	hPrev := s.rowHeaders(K)
	cPrev := s.rowHeaders(K)
	cCur := s.rowHeaders(K)
	for w := 0; w < K; w++ {
		hPrev[w] = s.floats(H)
		cPrev[w] = s.floats(H)
		cCur[w] = s.floats(H)
	}
	for step := 0; step < T; step++ {
		t := step
		if l.reverse {
			t = T - 1 - step
		}
		r := 0
		for ; r+3 < 4*H; r += 4 {
			w0 := whData[r*H:][:H]
			w1 := whData[(r+1)*H:][:H]
			w2 := whData[(r+2)*H:][:H]
			w3 := whData[(r+3)*H:][:H]
			for w := 0; w < K; w++ {
				zt := z[w*T+t]
				hp := hPrev[w][0:H:H]
				a0, a1, a2, a3 := zt[r], zt[r+1], zt[r+2], zt[r+3]
				j := 0
				for ; j < H-1; j += 2 {
					hj, hj1 := hp[j], hp[j+1]
					a0 += w0[j] * hj
					a0 += w0[j+1] * hj1
					a1 += w1[j] * hj
					a1 += w1[j+1] * hj1
					a2 += w2[j] * hj
					a2 += w2[j+1] * hj1
					a3 += w3[j] * hj
					a3 += w3[j+1] * hj1
				}
				for ; j < H; j++ {
					hj := hp[j]
					a0 += w0[j] * hj
					a1 += w1[j] * hj
					a2 += w2[j] * hj
					a3 += w3[j] * hj
				}
				zt[r] = a0
				zt[r+1] = a1
				zt[r+2] = a2
				zt[r+3] = a3
			}
		}
		for ; r < 4*H; r++ {
			wh := whData[r*H:][:H]
			for w := 0; w < K; w++ {
				zt := z[w*T+t]
				acc := zt[r]
				for j, hj := range hPrev[w][0:H:H] {
					acc += wh[j] * hj
				}
				zt[r] = acc
			}
		}
		for w := 0; w < K; w++ {
			zt := z[w*T+t]
			ht := hss[w][t][:H]
			zi, zf := zt[:H], zt[H:][:H]
			zg, zo := zt[2*H:][:H], zt[3*H:][:H]
			cp, cc := cPrev[w][:H], cCur[w][:H]
			// Gate expressions are verbatim copies of recurInto's (which in
			// turn mirror sigmoid in param.go) — same branches, same
			// operations, bit-identical results.
			for j, zij := range zi {
				var i, f, o float64
				if zij >= 0 {
					e := math.Exp(-zij)
					i = 1 / (1 + e)
				} else {
					e := math.Exp(zij)
					i = e / (1 + e)
				}
				if zfj := zf[j]; zfj >= 0 {
					e := math.Exp(-zfj)
					f = 1 / (1 + e)
				} else {
					e := math.Exp(zfj)
					f = e / (1 + e)
				}
				g := math.Tanh(zg[j])
				if zoj := zo[j]; zoj >= 0 {
					e := math.Exp(-zoj)
					o = 1 / (1 + e)
				} else {
					e := math.Exp(zoj)
					o = e / (1 + e)
				}
				cc[j] = f*cp[j] + i*g
				ht[j] = o * math.Tanh(cc[j])
			}
			hPrev[w] = ht
			cPrev[w], cCur[w] = cCur[w], cPrev[w]
		}
	}
}
