package nn

import (
	"math"
	"math/rand"
	"testing"
)

// lossFor runs the network on x and reduces the output with fixed random
// weights, giving a scalar objective with a known output gradient.
func lossFor(net *Network, x [][]float64, w [][]float64) float64 {
	y := net.Forward(x, true)
	s := 0.0
	for t := range y {
		for i := range y[t] {
			s += w[t][i] * y[t][i]
		}
	}
	return s
}

func randSeq(rng *rand.Rand, T, dim int) [][]float64 {
	x := make([][]float64, T)
	for t := range x {
		x[t] = make([]float64, dim)
		for i := range x[t] {
			x[t][i] = rng.NormFloat64()
		}
	}
	return x
}

// gradCheck verifies analytic parameter and input gradients against central
// finite differences.
func gradCheck(t *testing.T, name string, net *Network, T int) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	x := randSeq(rng, T, net.InDim())
	outT := T
	if _, isPool := net.Layers[len(net.Layers)-1].(*MeanPool); isPool {
		outT = 1
	}
	w := randSeq(rng, outT, net.OutDim())

	params := net.Params()
	ZeroGrads(params)
	y := net.Forward(x, true)
	dY := make([][]float64, len(y))
	for i := range dY {
		dY[i] = w[i]
	}
	dX := net.Backward(dY)

	const eps = 1e-6
	const tol = 1e-4
	f := func() float64 { return lossFor(net, x, w) }
	for _, p := range params {
		// spot-check a handful of indices per parameter
		idxs := []int{0, len(p.Data) / 2, len(p.Data) - 1}
		for _, i := range idxs {
			old := p.Data[i]
			p.Data[i] = old + eps
			l1 := f()
			p.Data[i] = old - eps
			l2 := f()
			p.Data[i] = old
			num := (l1 - l2) / (2 * eps)
			if math.Abs(num-p.Grad[i]) > tol*(1+math.Abs(num)) {
				t.Errorf("%s: %s[%d]: analytic %.8f vs numeric %.8f", name, p.Name, i, p.Grad[i], num)
			}
		}
	}
	for _, ti := range []int{0, T / 2, T - 1} {
		for i := range x[ti] {
			old := x[ti][i]
			x[ti][i] = old + eps
			l1 := f()
			x[ti][i] = old - eps
			l2 := f()
			x[ti][i] = old
			num := (l1 - l2) / (2 * eps)
			if math.Abs(num-dX[ti][i]) > tol*(1+math.Abs(num)) {
				t.Errorf("%s: dX[%d][%d]: analytic %.8f vs numeric %.8f", name, ti, i, dX[ti][i], num)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := &Network{Layers: []Layer{NewLinear(4, 3, rng)}}
	gradCheck(t, "linear", net, 6)
}

func TestLSTMGradientsForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := &Network{Layers: []Layer{NewLSTM(3, 4, false, rng)}}
	gradCheck(t, "lstm-fwd", net, 7)
}

func TestLSTMGradientsReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := &Network{Layers: []Layer{NewLSTM(3, 4, true, rng)}}
	gradCheck(t, "lstm-rev", net, 7)
}

func TestBiLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := &Network{Layers: []Layer{NewBiLSTM(3, 3, rng)}}
	gradCheck(t, "bilstm", net, 6)
}

func TestStackedBiLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewStackedBiLSTM(3, 2, 3, rng)
	gradCheck(t, "stack3", net, 5)
}

func TestStackWithHeadGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewStackedBiLSTM(3, 2, 2, rng)
	net.Layers = append(net.Layers, NewLinear(net.OutDim(), 2, rng))
	gradCheck(t, "stack+linear", net, 5)
}

func TestMeanPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := &Network{Layers: []Layer{
		NewBiLSTM(3, 3, rng),
		NewMeanPool(6),
		NewLinear(6, 1, rng),
	}}
	gradCheck(t, "window-net-shape", net, 6)
}

func TestForwardDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewStackedBiLSTM(4, 5, 2, rng)
	x := randSeq(rand.New(rand.NewSource(9)), 10, 4)
	y1 := net.Forward(x, false)
	y2 := net.Forward(x, false)
	for tt := range y1 {
		for i := range y1[tt] {
			if y1[tt][i] != y2[tt][i] {
				t.Fatalf("forward not deterministic at [%d][%d]", tt, i)
			}
		}
	}
}

func TestShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewStackedBiLSTM(7, 5, 3, rng)
	if net.InDim() != 7 || net.OutDim() != 10 {
		t.Errorf("dims = %d/%d, want 7/10", net.InDim(), net.OutDim())
	}
	y := net.Forward(randSeq(rng, 13, 7), false)
	if len(y) != 13 || len(y[0]) != 10 {
		t.Errorf("output shape %dx%d, want 13x10", len(y), len(y[0]))
	}
}

func TestDimMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLinear(3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch did not panic")
		}
	}()
	l.Forward([][]float64{{1, 2}}, false)
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	u := func() float64 { return rng.Float64() }
	d := NewDropout(4, 0.5, u)
	x := [][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}}
	yTrain := d.Forward(x, true)
	zeros, doubled := 0, 0
	for t2 := range yTrain {
		for i := range yTrain[t2] {
			switch yTrain[t2][i] {
			case 0:
				zeros++
			case x[t2][i] * 2:
				doubled++
			default:
				t.Errorf("dropout produced %v from %v", yTrain[t2][i], x[t2][i])
			}
		}
	}
	if zeros == 0 || doubled == 0 {
		t.Errorf("dropout mask degenerate: zeros=%d kept=%d", zeros, doubled)
	}
	yEval := d.Forward(x, false)
	for t2 := range yEval {
		for i := range yEval[t2] {
			if yEval[t2][i] != x[t2][i] {
				t.Error("dropout not identity at inference")
			}
		}
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam("p", 1, 3)
	copy(p.Grad, []float64{3, 4, 0})
	ClipGrads([]*Param{p}, 1)
	if n := GradNorm([]*Param{p}); math.Abs(n-1) > 1e-12 {
		t.Errorf("norm after clip = %v, want 1", n)
	}
	copy(p.Grad, []float64{0.1, 0.1, 0})
	ClipGrads([]*Param{p}, 1)
	if p.Grad[0] != 0.1 {
		t.Error("clip modified gradients under the threshold")
	}
}

func TestCountParams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// LSTM(in=3,H=4): Wx 16x3 + Wh 16x4 + b 16 = 48+64+16 = 128; BiLSTM = 256.
	b := NewBiLSTM(3, 4, rng)
	if got := CountParams(b.Params()); got != 256 {
		t.Errorf("CountParams = %d, want 256", got)
	}
}

func TestSigmoidStability(t *testing.T) {
	if v := sigmoid(1000); v != 1 {
		t.Errorf("sigmoid(1000) = %v", v)
	}
	if v := sigmoid(-1000); v != 0 {
		t.Errorf("sigmoid(-1000) = %v", v)
	}
	if v := sigmoid(0); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", v)
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := NewParam("p", 10, 10)
	p.XavierInit(rng)
	limit := math.Sqrt(6.0 / 20.0)
	nonzero := 0
	for _, v := range p.Data {
		if math.Abs(v) > limit {
			t.Fatalf("init value %v outside ±%v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 90 {
		t.Errorf("suspiciously many zeros after init: %d/100 nonzero", nonzero)
	}
}
