package nn

// Layer is one differentiable sequence-to-sequence block. Forward caches
// whatever Backward needs when train is true (with train=false the BPTT
// caches are skipped, and Backward is only valid after a train=true
// Forward); Backward consumes the upstream gradient dY (same shape as
// Forward's output) and returns the gradient with respect to the input,
// accumulating parameter gradients into Params().
//
// Aliasing contract: layers treat their inputs as read-only. Forward (and
// FastLayer.Infer) never writes x in place, and Backward never writes dY in
// place. In exchange, outputs are allowed to alias inputs: Dropout's off
// path returns x itself, BiLSTM.Backward hands each direction row[:H] /
// row[H:] views of dY, and the inference fast path chains arena-backed
// buffers from layer to layer. TestLayerAliasingContract enforces the
// read-only half of the contract for every layer in this package.
type Layer interface {
	Forward(x [][]float64, train bool) [][]float64
	Backward(dY [][]float64) [][]float64
	Params() []*Param
	// InDim and OutDim report the per-timestep feature sizes.
	InDim() int
	OutDim() int
}

// Network is a simple sequential container.
type Network struct {
	Layers []Layer
}

// Forward runs the layers in order.
func (n *Network) Forward(x [][]float64, train bool) [][]float64 {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the layers in reverse order.
func (n *Network) Backward(dY [][]float64) [][]float64 {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dY = n.Layers[i].Backward(dY)
	}
	return dY
}

// Params returns all learnable parameters.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// InDim returns the first layer's input size.
func (n *Network) InDim() int { return n.Layers[0].InDim() }

// OutDim returns the last layer's output size.
func (n *Network) OutDim() int { return n.Layers[len(n.Layers)-1].OutDim() }
