package nn

import "math/rand"

// BiLSTM runs a forward and a backward LSTM over the sequence and
// concatenates their hidden vectors per timestep (output size 2H), giving
// every position both past and future context — the property Section 2.2
// singles out as essential for CEP, where an event's relevance often depends
// on later events.
type BiLSTM struct {
	Fwd *LSTM
	Bwd *LSTM
}

// NewBiLSTM builds a bidirectional layer with per-direction hidden size
// hidden.
func NewBiLSTM(in, hidden int, rng *rand.Rand) *BiLSTM {
	return &BiLSTM{
		Fwd: NewLSTM(in, hidden, false, rng),
		Bwd: NewLSTM(in, hidden, true, rng),
	}
}

// Forward returns the concatenated hidden sequence (T × 2H).
func (b *BiLSTM) Forward(x [][]float64, train bool) [][]float64 {
	hf := b.Fwd.Forward(x, train)
	hb := b.Bwd.Forward(x, train)
	H := b.Fwd.hidden
	out := make([][]float64, len(x))
	for t := range out {
		row := make([]float64, 2*H)
		copy(row[:H], hf[t])
		copy(row[H:], hb[t])
		out[t] = row
	}
	return out
}

// Backward splits the upstream gradient between the two directions and sums
// their input gradients. The per-direction gradients are row[:H]/row[H:]
// views into dY, not copies — safe under the layer aliasing contract
// (layer.go): Backward implementations treat dY as read-only, so handing
// each LSTM a window into the caller's buffer cannot corrupt it.
func (b *BiLSTM) Backward(dY [][]float64) [][]float64 {
	H := b.Fwd.hidden
	df := make([][]float64, len(dY))
	db := make([][]float64, len(dY))
	for t, row := range dY {
		df[t] = row[:H]
		db[t] = row[H:]
	}
	dxF := b.Fwd.Backward(df)
	dxB := b.Bwd.Backward(db)
	for t := range dxF {
		for i := range dxF[t] {
			dxF[t][i] += dxB[t][i]
		}
	}
	return dxF
}

// Params returns both directions' parameters.
func (b *BiLSTM) Params() []*Param {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}

// InDim returns the input feature size.
func (b *BiLSTM) InDim() int { return b.Fwd.in }

// OutDim returns 2× the per-direction hidden size.
func (b *BiLSTM) OutDim() int { return 2 * b.Fwd.hidden }

// NewStackedBiLSTM builds layers stacked BiLSTMs (the paper's default is 3
// layers of hidden size 75), each consuming the previous layer's 2H output.
func NewStackedBiLSTM(in, hidden, layers int, rng *rand.Rand) *Network {
	n := &Network{}
	dim := in
	for i := 0; i < layers; i++ {
		b := NewBiLSTM(dim, hidden, rng)
		n.Layers = append(n.Layers, b)
		dim = b.OutDim()
	}
	return n
}
