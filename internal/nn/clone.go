package nn

import "fmt"

// Inference cloning. Layers cache activations from the most recent Forward
// call, so a single network instance is not safe for concurrent use even at
// inference time. Clone produces a structurally identical network whose
// layers share the original's parameter tensors (weights are only read
// during Forward) but own fresh scratch caches, so each clone may run
// Forward concurrently with the original and with other clones.
//
// Clones share Grad accumulators too: training (Backward) on a clone races
// with training on the original. Clones are inference-only by contract.

// Cloneable is implemented by layers that support inference cloning.
type Cloneable interface {
	// CloneLayer returns a copy sharing parameters but not scratch state.
	CloneLayer() Layer
}

// Clone returns an inference copy of the network: same layer structure,
// shared parameters, independent per-layer caches. It panics if a layer
// does not implement Cloneable (all layers in this package do).
func (n *Network) Clone() *Network {
	out := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		c, ok := l.(Cloneable)
		if !ok {
			//dlacep:ignore libpanic documented contract: every layer shipped in this package implements Cloneable
			panic(fmt.Sprintf("nn: layer %T does not support cloning", l))
		}
		out.Layers[i] = c.CloneLayer()
	}
	return out
}

// CloneLayer returns an inference copy sharing Wx, Wh, and B.
func (l *LSTM) CloneLayer() Layer {
	return &LSTM{Wx: l.Wx, Wh: l.Wh, B: l.B, in: l.in, hidden: l.hidden, reverse: l.reverse}
}

// CloneLayer clones both directions.
func (b *BiLSTM) CloneLayer() Layer {
	return &BiLSTM{
		Fwd: b.Fwd.CloneLayer().(*LSTM),
		Bwd: b.Bwd.CloneLayer().(*LSTM),
	}
}

// CloneLayer returns an inference copy sharing W and B.
func (l *Linear) CloneLayer() Layer {
	return &Linear{W: l.W, B: l.B, in: l.in, out: l.out}
}

// CloneLayer returns a fresh pooling layer (no parameters).
func (m *MeanPool) CloneLayer() Layer { return &MeanPool{dim: m.dim} }

// CloneLayer returns a fresh dropout layer sharing P but NOT the sampler:
// the parent's rng is a stateful closure, and two goroutines drawing from it
// concurrently would race — exactly the cross-clone state sharing Clone
// exists to prevent. Inference clones never consult the sampler (dropout is
// identity at eval), so the clone carries none; a training forward on a
// clone now fails fast on the nil sampler instead of silently corrupting the
// parent's RNG stream, enforcing the inference-only contract above.
func (d *Dropout) CloneLayer() Layer { return &Dropout{P: d.P, dim: d.dim} }

// CloneLayer returns an inference copy sharing W and B.
func (c *Conv1D) CloneLayer() Layer {
	return &Conv1D{W: c.W, B: c.B, in: c.in, out: c.out, kernel: c.kernel, dilation: c.dilation}
}

// CloneLayer returns a fresh rectifier (no parameters).
func (r *ReLU) CloneLayer() Layer { return &ReLU{dim: r.dim} }

// CloneLayer clones the body and the projection.
func (r *Residual) CloneLayer() Layer {
	out := &Residual{Body: r.Body.Clone()}
	if r.Proj != nil {
		out.Proj = r.Proj.CloneLayer().(*Linear)
	}
	return out
}
