package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// inferTestNets builds every layer combination the pipeline (and its
// ablations) can assemble, so the differential suite proves bit-equality for
// the exact networks the filters run.
func inferTestNets(rng *rand.Rand) map[string]*Network {
	event := NewStackedBiLSTM(4, 6, 2, rng)
	event.Layers = append(event.Layers, NewLinear(event.OutDim(), 2, rng))

	window := NewStackedBiLSTM(4, 5, 1, rng)
	window.Layers = append(window.Layers,
		NewMeanPool(window.OutDim()), NewLinear(window.OutDim(), 1, rng))

	drop := NewStackedBiLSTM(4, 3, 2, rng)
	layers := []Layer{drop.Layers[0], NewDropout(6, 0.5, rng.Float64), drop.Layers[1],
		NewDropout(6, 0.5, rng.Float64), NewLinear(6, 2, rng)}
	drop.Layers = layers

	tcn := NewTCN(4, 6, 2, 3, rng)
	tcn.Layers = append(tcn.Layers, NewLinear(tcn.OutDim(), 2, rng))

	single := &Network{Layers: []Layer{NewLSTM(4, 5, false, rng)}}
	reversed := &Network{Layers: []Layer{NewLSTM(4, 5, true, rng)}}

	return map[string]*Network{
		"event-shape":  event,
		"window-shape": window,
		"with-dropout": drop,
		"tcn":          tcn,
		"lstm-fwd":     single,
		"lstm-rev":     reversed,
	}
}

// requireBitEqual fails unless got and want agree in shape and every element
// is bit-identical (math.Float64bits, so -0/+0 and NaN payloads count too).
func requireBitEqual(t *testing.T, name string, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for ti := range want {
		if len(got[ti]) != len(want[ti]) {
			t.Fatalf("%s: row %d has %d cols, want %d", name, ti, len(got[ti]), len(want[ti]))
		}
		for i := range want[ti] {
			if math.Float64bits(got[ti][i]) != math.Float64bits(want[ti][i]) {
				t.Fatalf("%s: [%d][%d] = %x, want %x (fast path not bit-identical)",
					name, ti, i, math.Float64bits(got[ti][i]), math.Float64bits(want[ti][i]))
			}
		}
	}
}

// TestInferMatchesForwardBitExact is the differential-equivalence suite: the
// fast path must reproduce the naive forward bit for bit over every
// architecture and window length, including the degenerate T=0 and T=1.
func TestInferMatchesForwardBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, net := range inferTestNets(rng) {
		s := NewScratch()
		for _, T := range []int{0, 1, 2, 3, 5, 17} {
			x := randSeq(rng, T, net.InDim())
			want := net.Forward(x, false)
			got := net.Infer(x, s) // one scratch reused across all shapes
			requireBitEqual(t, name, got, want)
		}
	}
}

// TestInferScratchReuse drives one arena through shrinking and growing
// windows and checks results stay exact — the reuse path (reset + regrow) is
// where a stale-buffer bug would show up.
func TestInferScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewStackedBiLSTM(3, 4, 2, rng)
	net.Layers = append(net.Layers, NewMeanPool(net.OutDim()), NewLinear(net.OutDim(), 1, rng))
	s := NewScratch()
	for _, T := range []int{9, 2, 31, 1, 31, 0, 9} {
		x := randSeq(rng, T, 3)
		requireBitEqual(t, "reuse", net.Infer(x, s), net.Forward(x, false))
	}
}

// TestInferNilScratchFallsBack checks the nil-arena escape hatch routes
// through the naive forward.
func TestInferNilScratchFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	net := NewStackedBiLSTM(3, 4, 1, rng)
	x := randSeq(rng, 6, 3)
	requireBitEqual(t, "nil-scratch", net.Infer(x, nil), net.Forward(x, false))
}

// FuzzInferEquivalence derives a random architecture, weights, and window
// from the fuzz input and requires bit-exact naive/fast agreement.
func FuzzInferEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(1), uint8(0))
	f.Add(int64(7), uint8(0), uint8(1), uint8(2), uint8(1)) // T=0
	f.Add(int64(9), uint8(1), uint8(5), uint8(3), uint8(2)) // T=1
	f.Add(int64(3), uint8(17), uint8(2), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, tLen, hidden, layers, arch uint8) {
		T := int(tLen % 24)
		H := int(hidden%7) + 1
		L := int(layers%3) + 1
		rng := rand.New(rand.NewSource(seed))
		in := 3
		net := NewStackedBiLSTM(in, H, L, rng)
		switch arch % 3 {
		case 1: // event-network shape
			net.Layers = append(net.Layers, NewLinear(net.OutDim(), 2, rng))
		case 2: // window-network shape
			net.Layers = append(net.Layers,
				NewMeanPool(net.OutDim()), NewLinear(net.OutDim(), 1, rng))
		}
		x := randSeq(rng, T, in)
		want := net.Forward(x, false)
		got := net.Infer(x, NewScratch())
		requireBitEqual(t, "fuzz", got, want)
	})
}

// TestNetworkInferZeroAllocs is the steady-state allocation gate the CI
// bench-smoke step relies on: after one warm-up window sizes the arena,
// Network.Infer must allocate nothing.
func TestNetworkInferZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	nets := map[string]*Network{}
	event := NewStackedBiLSTM(5, 8, 3, rng)
	event.Layers = append(event.Layers, NewLinear(event.OutDim(), 2, rng))
	nets["event-shape"] = event
	window := NewStackedBiLSTM(5, 8, 3, rng)
	window.Layers = append(window.Layers,
		NewMeanPool(window.OutDim()), NewLinear(window.OutDim(), 1, rng))
	nets["window-shape"] = window

	for name, net := range nets {
		x := randSeq(rng, 20, 5)
		s := NewScratch()
		net.Infer(x, s) // warm-up: grows the arena to its high-water mark
		if allocs := testing.AllocsPerRun(50, func() { net.Infer(x, s) }); allocs != 0 {
			t.Errorf("%s: Network.Infer allocates %.1f times per window in steady state, want 0", name, allocs)
		}
	}
}

// TestScratchArenaConcurrentInfer runs clones concurrently, each with its
// own arena, against sequential references. Under -race (CI runs the whole
// module with it) this proves per-goroutine arenas share nothing.
func TestScratchArenaConcurrentInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	net := NewStackedBiLSTM(4, 6, 2, rng)
	net.Layers = append(net.Layers, NewLinear(net.OutDim(), 2, rng))
	const workers = 8
	inputs := make([][][]float64, workers)
	want := make([][][]float64, workers)
	for i := range inputs {
		inputs[i] = randSeq(rng, 6+i, 4)
		want[i] = net.Forward(inputs[i], false)
	}
	got := make([][][]float64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		f := net
		if i > 0 {
			f = net.Clone()
		}
		wg.Add(1)
		go func(i int, f *Network) {
			defer wg.Done()
			s := NewScratch() // per-goroutine arena, as in core's worker loops
			for rep := 0; rep < 20; rep++ {
				got[i] = f.Infer(inputs[i], s)
			}
			// copy out of the arena before the goroutine's scratch dies
			out := make([][]float64, len(got[i]))
			for t2 := range out {
				out[t2] = append([]float64(nil), got[i][t2]...)
			}
			got[i] = out
		}(i, f)
	}
	wg.Wait()
	for i := range got {
		requireBitEqual(t, "concurrent", got[i], want[i])
	}
}

// TestMeanPoolEmptyWindow is the regression test for the T=0 NaN bug: an
// empty window must pool to the zero vector, not 0·(1/0) = NaN, and
// Backward must mirror the guard.
func TestMeanPoolEmptyWindow(t *testing.T) {
	m := NewMeanPool(3)
	out := m.Forward(nil, false)
	if len(out) != 1 {
		t.Fatalf("empty-window pool returned %d rows, want 1", len(out))
	}
	if len(out[0]) != 3 {
		t.Fatalf("empty-window pool row has %d cols, want 3", len(out[0]))
	}
	for i, v := range out[0] {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("empty-window pool[0][%d] = %v, want 0", i, v)
		}
	}
	// the fast path takes the same guard
	s := NewScratch()
	requireBitEqual(t, "meanpool-T0", m.Infer(nil, s), out)
	// Backward after a T=0 forward: no timesteps, no gradient, no Inf
	m.Forward(nil, true)
	if dX := m.Backward([][]float64{{1, 2, 3}}); len(dX) != 0 {
		t.Errorf("empty-window pool Backward returned %d rows, want 0", len(dX))
	}
}

// TestLayerAliasingContract enforces the read-only half of the aliasing
// contract (layer.go): no layer writes its input x in Forward/Infer nor the
// upstream gradient dY in Backward. The contract is what makes Dropout's
// off-path alias and BiLSTM.Backward's row[:H]/row[H:] views safe.
func TestLayerAliasingContract(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	layers := map[string]Layer{
		"linear":   NewLinear(4, 3, rng),
		"lstm-fwd": NewLSTM(4, 3, false, rng),
		"lstm-rev": NewLSTM(4, 3, true, rng),
		"bilstm":   NewBiLSTM(4, 3, rng),
		"meanpool": NewMeanPool(4),
		"dropout":  NewDropout(4, 0.5, rng.Float64),
		"conv1d":   NewConv1D(4, 3, 3, 1, rng),
		"relu":     NewReLU(4),
		"residual": NewResidual(&Network{Layers: []Layer{NewLinear(4, 3, rng)}}, rng),
	}
	snapshot := func(x [][]float64) [][]float64 {
		c := make([][]float64, len(x))
		for i := range x {
			c[i] = append([]float64(nil), x[i]...)
		}
		return c
	}
	for name, l := range layers {
		const T = 5
		x := randSeq(rng, T, l.InDim())
		xCopy := snapshot(x)
		y := l.Forward(x, true)
		requireBitEqual(t, name+": Forward(train) mutated its input", x, xCopy)

		outT := len(y)
		dY := randSeq(rng, outT, l.OutDim())
		dYCopy := snapshot(dY)
		l.Backward(dY)
		requireBitEqual(t, name+": Backward mutated dY", dY, dYCopy)

		l.Forward(x, false)
		requireBitEqual(t, name+": Forward(eval) mutated its input", x, xCopy)

		if f, ok := l.(FastLayer); ok {
			f.Infer(x, NewScratch())
			requireBitEqual(t, name+": Infer mutated its input", x, xCopy)
		} else {
			t.Errorf("%s: does not implement FastLayer", name)
		}
	}
}
