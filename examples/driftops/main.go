// Drift operations: run a deployed DLACEP filter through a regime change,
// detect the degradation with cheap reservoir audits (Section 4.3's
// retraining strategy made incremental), and recover by warm-start
// retraining on recent windows (transfer learning).
//
//	go run ./examples/driftops
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

// regimeStream produces synthetic market data whose volume scale shifts by
// regime — the classical covariate drift that breaks a fitted normalizer.
func regimeStream(n int, scale float64, seed int64) *event.Stream {
	rng := rand.New(rand.NewSource(seed))
	types := []string{"A", "B", "C", "D", "E"}
	events := make([]event.Event, n)
	for i := range events {
		events[i] = event.Event{
			Type:  types[rng.Intn(len(types))],
			Attrs: []float64{rng.NormFloat64() * scale},
		}
	}
	return event.NewStream(dataset.VolSchema(), events)
}

func main() {
	p := pattern.MustParse("PATTERN SEQ(A a, B b) WHERE 2 * a.vol < b.vol WITHIN 8")
	pats := []*pattern.Pattern{p}
	cfg := core.Config{MarkSize: 16, StepSize: 8, Hidden: 8, Layers: 1, Seed: 1}

	// 1. Train on the old regime.
	oldData := regimeStream(3000, 1.0, 1)
	lab, err := label.New(oldData.Schema, pats...)
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.NewEventNetwork(oldData.Schema, pats, cfg)
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultTrainOptions()
	opt.MaxEpochs = 8
	trainWs := dataset.Windows(oldData, 16)
	if _, err := net.Fit(trainWs, lab, opt); err != nil {
		log.Fatal(err)
	}
	if _, err := net.Calibrate(trainWs[:50], lab, 0.9); err != nil {
		log.Fatal(err)
	}
	c, _ := net.Evaluate(dataset.Windows(regimeStream(800, 1.0, 9), 16), lab)
	fmt.Printf("deployed filter, old regime: event F1 %.3f\n", c.F1())

	// 2. Watch live traffic with a drift monitor (audits label only a few
	// reservoir windows per period).
	mon, err := core.NewDriftMonitor(net, lab, core.DriftOptions{
		AuditEvery: 25, Sample: 6, MinF1: 0.5, Alpha: 0.8, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The world shifts: volumes now 10x larger and offset.
	newRegime := regimeStream(4000, 1.0, 42)
	for i := range newRegime.Events {
		newRegime.Events[i].Attrs[0] = newRegime.Events[i].Attrs[0]*9 + 20
	}
	liveWs := dataset.Windows(newRegime, 16)
	driftAt := -1
	for i, w := range liveWs {
		audited, drifted, err := mon.Observe(w)
		if err != nil {
			log.Fatal(err)
		}
		if audited {
			fmt.Printf("  audit after window %3d: F1 ema %.3f drifted=%v\n", i+1, mon.F1(), drifted)
		}
		if drifted {
			driftAt = i
			break
		}
	}
	if driftAt < 0 {
		fmt.Println("no drift detected (unexpected for this scenario)")
		return
	}
	fmt.Printf("drift detected after %d windows — retraining\n", driftAt+1)

	// 3. Recover: warm-start a fresh network from the old weights and fit
	// on recent (new-regime) windows.
	fresh, err := core.NewEventNetwork(oldData.Schema, pats, cfg)
	if err != nil {
		log.Fatal(err)
	}
	copied, err := fresh.TransferFrom(net)
	if err != nil {
		log.Fatal(err)
	}
	opt.MaxEpochs = 6
	recent := liveWs[:driftAt+1]
	if _, err := fresh.Fit(recent, lab, opt); err != nil {
		log.Fatal(err)
	}
	if _, err := fresh.Calibrate(recent, lab, 0.9); err != nil {
		log.Fatal(err)
	}
	holdout := dataset.Windows(regimeStream(800, 1.0, 77), 16)
	for i := range holdout {
		for j := range holdout[i] {
			holdout[i][j].Attrs[0] = holdout[i][j].Attrs[0]*9 + 20
		}
	}
	before, _ := net.Evaluate(holdout, lab)
	after, _ := fresh.Evaluate(holdout, lab)
	fmt.Printf("new-regime F1: stale filter %.3f -> retrained (warm-start, %d tensors) %.3f\n",
		before.F1(), copied, after.F1())
	mon.Reset()
	fmt.Println("monitor reset; deployment continues with the retrained filter")
}
