// IoT fleet monitor: a healthcare/IoT-flavored scenario (Section 1 cites
// both as CEP domains) with irregular sampling — demonstrating Kleene
// closure patterns and the simulated time-based window pipeline of
// Section 5.2 / Figure 14 (random-size windows padded with blank events).
//
//	go run ./examples/iotfleet
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

// fleetStream simulates sensor readings from a device fleet: heartbeats
// (HB), temperature readings (TEMP) and fault codes (FAULT), where faults
// cluster after overheating.
func fleetStream(n int, seed int64) *event.Stream {
	rng := rand.New(rand.NewSource(seed))
	schema := event.NewSchema("vol") // reading value
	events := make([]event.Event, n)
	heat := 45.0
	for i := range events {
		// mean-reverting thermal noise keeps the fleet statistically stable
		heat += 0.06*(46-heat) + rng.NormFloat64()*3
		if heat < 35 {
			heat = 35
		}
		switch {
		case rng.Float64() < 0.10 && heat > 52:
			events[i] = event.Event{Type: "FAULT", Attrs: []float64{heat}}
			heat -= 10 // fault handling cools the device
		case rng.Float64() < 0.3:
			events[i] = event.Event{Type: "TEMP", Attrs: []float64{heat}}
		default:
			events[i] = event.Event{Type: "HB", Attrs: []float64{1}}
		}
	}
	return event.NewStream(schema, events)
}

func main() {
	st := fleetStream(20000, 3)

	// Overheating incident: a hot reading, one or more further hot readings
	// (a per-iteration Kleene condition, only expressible programmatically),
	// then a fault — all within 20 readings.
	hot := func(alias string) pattern.Condition {
		return pattern.AbsRange{Lo: 50, Y: pattern.Ref{Alias: alias, Attr: "vol"}, Hi: math.Inf(1)}
	}
	root := pattern.Seq(
		pattern.Prim("t1", "TEMP"),
		pattern.KC(pattern.Prim("ts", "TEMP").With(hot("ts"))),
		pattern.Prim("f", "FAULT"),
	)
	p := pattern.New("overheat", root, pattern.Count(20),
		hot("t1"),
		pattern.Cmp{X: pattern.Ref{Alias: "f", Attr: "vol"}, Op: ">", Y: pattern.Ref{Alias: "t1", Attr: "vol"}},
	)
	fmt.Println("monitoring:", p)

	pats := []*pattern.Pattern{p}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		log.Fatal(err)
	}

	// Irregular sampling: cut the stream into random-size windows of up to
	// 40 readings and pad to fixed size for the network (Figure 14).
	const maxWindow = 40
	windows := dataset.TimeWindows(st, maxWindow, 5)
	trainWs, liveWs := windows[:len(windows)*7/10], windows[len(windows)*7/10:]

	cfg := core.Config{MarkSize: maxWindow, StepSize: maxWindow, Hidden: 10, Layers: 1, Seed: 2}
	net, err := core.NewEventNetwork(st.Schema, pats, cfg)
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultTrainOptions()
	opt.MaxEpochs = 10
	if _, err := net.Fit(trainWs, lab, opt); err != nil {
		log.Fatal(err)
	}
	if _, err := net.Calibrate(trainWs[:50], lab, 0.99); err != nil {
		log.Fatal(err)
	}

	pl, err := core.NewPipeline(st.Schema, pats, cfg, net)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pl.RunWindows(liveWs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DLACEP (time-based windows): %d incidents, %.0f events/s, filtered %.0f%%\n",
		len(res.Matches), res.Throughput(), 100*res.FilterRatio())
	for i, m := range res.Matches {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(res.Matches)-3)
			break
		}
		fmt.Printf("  incident: first temp %.1f°, fault at %.1f° (%d readings involved)\n",
			m.Binding["t1"].Attr(st.Schema, "vol"), m.Binding["f"].Attr(st.Schema, "vol"), len(m.Events))
	}

	// Exact CEP over the same live region for reference.
	live := dataset.Concat(st.Schema, liveWs)
	real := 0
	for i := range live.Events {
		if !live.Events[i].IsBlank() {
			live.Events[real] = live.Events[i]
			real++
		}
	}
	live.Events = live.Events[:real]
	ecep, err := core.RunECEP(st.Schema, pats, live)
	if err != nil {
		log.Fatal(err)
	}
	cmp := core.Compare(res, ecep)
	fmt.Printf("exact CEP found %d incident subsets: subset recall %.3f, gain %.2fx\n",
		len(ecep.Matches), cmp.Recall, cmp.Gain)
	fmt.Println("(each missed reading hides many Kleene subsets; distinct-fault")
	fmt.Println(" coverage below is the operational metric for this workload)")
	// Kleene matches are subsets: one missed reading hides exponentially
	// many subset matches, so also report coverage of distinct faults.
	faults := map[uint64]bool{}
	for _, m := range ecep.Matches {
		faults[m.Binding["f"].ID] = true
	}
	covered := 0
	for _, m := range res.Matches {
		if faults[m.Binding["f"].ID] {
			faults[m.Binding["f"].ID] = false
			covered++
		}
	}
	fmt.Printf("distinct faults covered: %d/%d\n", covered, len(faults))
}
