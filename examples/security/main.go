// Security monitor: negation patterns for breach detection. Section 4.4
// motivates the no-false-positive design with "real-time security systems
// in which each positive event indicates a breach": this example detects
// privileged access that was *not* preceded by an authorization, and shows
// the negation-aware labeling that keeps false alerts down.
//
//	go run ./examples/security
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

// auditStream simulates an access log: LOGIN, AUTH (authorization grants,
// with a privilege level), ACCESS (privileged operations), NOISE.
func auditStream(n int, seed int64) *event.Stream {
	rng := rand.New(rand.NewSource(seed))
	schema := event.NewSchema("vol") // privilege level
	events := make([]event.Event, n)
	for i := range events {
		r := rng.Float64()
		lvl := float64(1 + rng.Intn(5))
		switch {
		case r < 0.10:
			events[i] = event.Event{Type: "LOGIN", Attrs: []float64{lvl}}
		case r < 0.18:
			events[i] = event.Event{Type: "AUTH", Attrs: []float64{lvl}}
		case r < 0.28:
			events[i] = event.Event{Type: "ACCESS", Attrs: []float64{lvl}}
		default:
			events[i] = event.Event{Type: "NOISE", Attrs: []float64{0}}
		}
	}
	return event.NewStream(schema, events)
}

func main() {
	st := auditStream(20000, 11)

	// Breach: a login followed by a privileged access with NO authorization
	// of at least that level in between, within 15 audit records.
	p := pattern.MustParse(
		"PATTERN SEQ(LOGIN l, NEG(AUTH a), ACCESS x) WHERE a.vol >= x.vol AND x.vol > 3 WITHIN 15")
	fmt.Println("monitoring:", p)

	pats := []*pattern.Pattern{p}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		log.Fatal(err)
	}
	// Negation patterns automatically enable negation-aware labeling
	// (Section 4.4): AUTH events are marked too, so the inner CEP engine
	// can re-validate the negation on the filtered stream.
	fmt.Printf("negation-aware labeling: %v\n\n", lab.NegAware)

	cut := st.Len() * 7 / 10
	history, live := st.Slice(0, cut), st.Slice(cut, st.Len())

	cfg := core.Config{MarkSize: 30, StepSize: 15, Hidden: 10, Layers: 1, Seed: 4}
	net, err := core.NewEventNetwork(st.Schema, pats, cfg)
	if err != nil {
		log.Fatal(err)
	}
	trainWs := windows(history, 30)
	opt := core.DefaultTrainOptions()
	opt.MaxEpochs = 6
	if _, err := net.Fit(trainWs, lab, opt); err != nil {
		log.Fatal(err)
	}
	if _, err := net.Calibrate(trainWs[:50], lab, 0.95); err != nil {
		log.Fatal(err)
	}

	pl, err := core.NewPipeline(st.Schema, pats, cfg, net)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pl.Run(live)
	if err != nil {
		log.Fatal(err)
	}
	ecep, err := core.RunECEP(st.Schema, pats, live)
	if err != nil {
		log.Fatal(err)
	}
	cmp := core.Compare(res, ecep)
	fmt.Printf("alerts: DLACEP %d, exact %d\n", len(res.Matches), len(ecep.Matches))
	fmt.Printf("F1 %.3f (precision %.3f, recall %.3f), gain %.2fx, filtered %.0f%%\n",
		cmp.F1, cmp.Counts.Precision(), cmp.Counts.Recall(), cmp.Gain, 100*res.FilterRatio())
	if cmp.Gain < 1 {
		fmt.Println("note: this stream is partial-match scarce, the regime where exact CEP")
		fmt.Println("is already cheap and filtering cannot pay off (paper Section 3.2);")
		fmt.Println("the point here is alert precision, not throughput")
	}
	for i, m := range res.Matches {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(res.Matches)-3)
			break
		}
		fmt.Printf("  ALERT: login @%d, unauthorized level-%.0f access @%d\n",
			m.Binding["l"].ID, m.Binding["x"].Attr(st.Schema, "vol"), m.Binding["x"].ID)
	}
}

func windows(st *event.Stream, size int) [][]event.Event {
	var out [][]event.Event
	for lo := 0; lo+size <= st.Len(); lo += size {
		out = append(out, st.Events[lo:lo+size])
	}
	return out
}
