// Quickstart: define a pattern, train a DLACEP event-network filter on
// historical data, and extract matches from a fresh stream — comparing
// against exact CEP.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

func main() {
	// A sequence pattern in the textual query language: an A followed by a
	// B followed by a C whose volume exceeds both, all within 12 events.
	p := pattern.MustParse(
		"PATTERN SEQ(A a, B b, C c) WHERE c.vol > a.vol AND c.vol > b.vol WITHIN 12")

	// Historical data for training, fresh data for evaluation.
	history := dataset.Synthetic(12000, 6, 1)
	fresh := dataset.Synthetic(3000, 6, 2)
	fresh.AssignIDs(0)

	pats := []*pattern.Pattern{p}
	lab, err := label.New(history.Schema, pats...)
	if err != nil {
		log.Fatal(err)
	}

	// Train the fine-grained (per-event) filter network.
	cfg := core.Config{MarkSize: 24, StepSize: 12, Hidden: 8, Layers: 1, Seed: 1}
	net, err := core.NewEventNetwork(history.Schema, pats, cfg)
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultTrainOptions()
	opt.MaxEpochs = 8
	trainWs := dataset.Windows(history, 24)
	if _, err := net.Fit(trainWs, lab, opt); err != nil {
		log.Fatal(err)
	}
	// Tune the keep/drop threshold for 95% event recall on training data.
	if _, err := net.Calibrate(trainWs[:60], lab, 0.95); err != nil {
		log.Fatal(err)
	}

	// Assemble the DLACEP pipeline and evaluate the fresh stream.
	pl, err := core.NewPipeline(fresh.Schema, pats, cfg, net)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pl.Run(fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DLACEP: %d matches, %.0f events/s, filtered out %.0f%% of events\n",
		len(res.Matches), res.Throughput(), 100*res.FilterRatio())
	for i, m := range res.Matches {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(res.Matches)-3)
			break
		}
		fmt.Printf("  match: a=%d b=%d c=%d\n",
			m.Binding["a"].ID, m.Binding["b"].ID, m.Binding["c"].ID)
	}

	// Exact CEP on the same stream for comparison.
	ecep, err := core.RunECEP(fresh.Schema, pats, fresh)
	if err != nil {
		log.Fatal(err)
	}
	cmp := core.Compare(res, ecep)
	fmt.Printf("exact CEP: %d matches\nrecall %.3f, throughput gain %.2fx\n",
		len(ecep.Matches), cmp.Recall, cmp.Gain)
	if cmp.Gain < 1 {
		fmt.Println("note: this toy stream has few partial matches, the regime where exact")
		fmt.Println("CEP is already cheap (paper Section 3.2); see cmd/dlacep-bench -fig headline")
		fmt.Println("for a workload where filtering pays off by orders of magnitude")
	}
}
