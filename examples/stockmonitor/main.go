// Stock monitor: the paper's motivating financial scenario (Example 1 and
// the Section 2.1 five-stock pattern) on the synthetic NASDAQ-shaped
// dataset. Shows programmatic pattern construction with the Table 1
// template builders, window- vs event-network filters, and the
// no-false-positive guarantee of the ID constraint.
//
//	go run ./examples/stockmonitor
package main

import (
	"fmt"
	"log"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
)

func main() {
	// A NASDAQ-shaped stream: Zipf-prevalent tickers S1, S2, ... with
	// log-normal volume walks (see DESIGN.md for the substitution).
	st := dataset.Stock(dataset.StockConfig{
		Events: 30000, Tickers: 100, ZipfS: 1.1, Sigma: 0.3, Seed: 42,
	})

	// Section 2.1's pattern, scaled down: five updates of top tickers with
	// a volume-ratio correlation, within 30 events of each other.
	p := queries.QA1(30, 4, 8, []int{1, 2, 3}, 0.55, 1.45)
	fmt.Println("monitoring:", p)

	pats := []*pattern.Pattern{p}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		log.Fatal(err)
	}

	// Train both filter variants on the first 70% of history.
	cut := st.Len() * 7 / 10
	history, live := st.Slice(0, cut), st.Slice(cut, st.Len())
	trainWs := dataset.Windows(history, 60)
	cfg := core.Config{MarkSize: 60, StepSize: 30, Hidden: 12, Layers: 1, Seed: 7}

	eventNet, err := core.NewEventNetwork(st.Schema, pats, cfg)
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultTrainOptions()
	opt.MaxEpochs = 6
	if _, err := eventNet.Fit(trainWs, lab, opt); err != nil {
		log.Fatal(err)
	}
	if _, err := eventNet.Calibrate(trainWs[:50], lab, 0.9); err != nil {
		log.Fatal(err)
	}

	windowNet, err := core.NewWindowNetwork(st.Schema, pats, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := windowNet.Fit(trainWs, lab, opt); err != nil {
		log.Fatal(err)
	}
	if _, err := windowNet.Calibrate(trainWs[:50], lab, 0.9); err != nil {
		log.Fatal(err)
	}

	ecep, err := core.RunECEP(st.Schema, pats, live)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact CEP on live data: %d matches, %.0f events/s\n",
		len(ecep.Matches), ecep.Throughput())

	for _, f := range []struct {
		name   string
		filter core.EventFilter
	}{
		{"event-network ", eventNet},
		{"window-network", core.WindowToEvent{F: windowNet}},
	} {
		pl, err := core.NewPipeline(st.Schema, pats, cfg, f.filter)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pl.Run(live)
		if err != nil {
			log.Fatal(err)
		}
		cmp := core.Compare(res, ecep)
		fmt.Printf("%s: %4d matches  recall %.3f  gain %.2fx  filtered %.0f%%\n",
			f.name, len(res.Matches), cmp.Recall, cmp.Gain, 100*res.FilterRatio())
		// The ID constraint guarantees no false positives (Section 4.4):
		if cmp.Counts.FP != 0 {
			log.Fatalf("BUG: %d false positives emitted", cmp.Counts.FP)
		}
	}
	fmt.Println("\nno false positives emitted by either variant, as guaranteed")
}
