package dlacep

// API-level test: the README quick-start flow through the public facade.

import (
	"testing"

	"dlacep/internal/dataset"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	p := MustParse("PATTERN SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 8")
	history := dataset.Synthetic(1600, 4, 1)
	live := dataset.Synthetic(400, 4, 2)

	lab, err := NewLabeler(history.Schema, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MarkSize: 16, StepSize: 8, Hidden: 6, Layers: 1, Seed: 1}
	net, err := NewEventNetwork(history.Schema, []*Pattern{p}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.MaxEpochs = 3
	trainWs := SampleWindows(history, 16)
	if _, err := net.Fit(trainWs, lab, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Calibrate(trainWs[:30], lab, 0.9); err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(live.Schema, []*Pattern{p}, cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run(live)
	if err != nil {
		t.Fatal(err)
	}
	ecep, err := RunECEP(live.Schema, []*Pattern{p}, live)
	if err != nil {
		t.Fatal(err)
	}
	cmp := Compare(res, ecep)
	if cmp.Counts.FP != 0 {
		t.Errorf("public API flow emitted %d false positives", cmp.Counts.FP)
	}
	if cmp.Recall < 0.5 {
		t.Errorf("public API flow recall %.3f suspiciously low", cmp.Recall)
	}

	// incremental processor via the facade
	proc, err := pipe.NewProcessor()
	if err != nil {
		t.Fatal(err)
	}
	for i := range live.Events {
		if _, err := proc.Push(live.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := proc.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(proc.Result().Keys) != len(res.Keys) {
		t.Error("facade processor disagrees with batch run")
	}

	// exact engine via the facade
	matches, _, err := RunExact(p, live)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(ecep.Keys) {
		t.Errorf("RunExact found %d, RunECEP %d", len(matches), len(ecep.Keys))
	}

	// strategy constants are wired
	p2 := MustParse("PATTERN SEQ(A a, B b) WITHIN 8")
	p2.Strategy = SkipTillNextMatch
	if _, err := NewEngine(p2, live.Schema); err != nil {
		t.Fatal(err)
	}
}
