// Command dlacep-datagen writes a synthetic evaluation stream as CSV, in
// either the paper's synthetic shape (uniform types, standard-normal
// attribute — Table 2) or the stock-market shape substituting the NASDAQ
// dataset (Zipf tickers, log-normal volume walks — Table 1; see DESIGN.md).
//
// Usage:
//
//	dlacep-datagen -kind stock -n 100000 -out stock.csv
//	dlacep-datagen -kind synthetic -n 50000 -types 15 -out syn.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"dlacep/internal/dataset"
	"dlacep/internal/event"
)

func main() {
	kind := flag.String("kind", "stock", "stock or synthetic")
	n := flag.Int("n", 100000, "number of events")
	types := flag.Int("types", 15, "synthetic: number of event types")
	tickers := flag.Int("tickers", 2500, "stock: number of ticker identifiers")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var st *event.Stream
	switch *kind {
	case "stock":
		cfg := dataset.DefaultStockConfig(*n, *seed)
		cfg.Tickers = *tickers
		st = dataset.Stock(cfg)
	case "synthetic":
		st = dataset.Synthetic(*n, *types, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q (stock|synthetic)\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := event.WriteCSV(w, st); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
