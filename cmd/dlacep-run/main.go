// Command dlacep-run evaluates a stream with a trained DLACEP model and
// reports matches, throughput, and (optionally) the comparison against
// exact CEP.
//
// Usage:
//
//	dlacep-run -model model.json -data stream.csv -compare
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/metrics"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlacep-run:", err)
	os.Exit(1)
}

func main() {
	modelPath := flag.String("model", "model.json", "trained model from dlacep-train")
	dataPath := flag.String("data", "", "stream CSV to evaluate")
	compare := flag.Bool("compare", false, "also run exact CEP and report recall / gain")
	printMatches := flag.Int("print", 5, "print up to this many matches")
	parallel := flag.Int("parallel", 0, "pipeline worker bound: 0 or 1 sequential, N>1 marks windows and runs pattern engines concurrently")
	metricsOut := flag.String("metrics-out", "", "write a JSON telemetry snapshot (stage timings, relay/drop counters) to this file")
	traceOut := flag.String("trace-out", "", "write sampled per-window pipeline traces (JSON Lines) to this file; analyze with dlacep-inspect -trace (sequential mode only: -parallel > 1 uses the untraced batch path)")
	traceEvery := flag.Int("trace-every", 64, "with -trace-out: sample one window trace per this many events")
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "usage: dlacep-run -model model.json -data stream.csv [-compare]")
		os.Exit(2)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	filter, pats, schema, err := core.LoadModel(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}
	df, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	st, err := event.ReadCSV(df)
	df.Close()
	if err != nil {
		fatal(err)
	}
	if got, want := st.Schema.Names(), schema.Names(); fmt.Sprint(got) != fmt.Sprint(want) {
		fatal(fmt.Errorf("stream schema %v does not match model schema %v", got, want))
	}

	w := int(pats[0].Window.Size)
	var cfg core.Config
	switch f := filter.(type) {
	case *core.EventNetwork:
		cfg = f.Cfg
	case core.WindowToEvent:
		cfg = f.F.(*core.WindowNetwork).Cfg
	default:
		cfg = core.DefaultConfig(w)
	}
	cfg.Parallelism = *parallel
	pl, err := core.NewPipeline(schema, pats, cfg, filter)
	if err != nil {
		fatal(err)
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		pl.Obs = reg
	}
	if *traceOut != "" {
		pl.Trace = trace.New(*traceEvery, trace.DefaultRing)
	}
	if *compare {
		pl.TrackKeys = true
	}
	res, err := pl.Run(st)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("events: %d  relayed: %d (filter ratio %.3f)\n",
		res.EventsTotal, res.EventsRelayed, res.FilterRatio())
	fmt.Printf("matches: %d\nthroughput: %.0f events/s (filter %v, cep %v)\n",
		len(res.Matches), res.Throughput(), res.FilterTime, res.CEPTime)
	for i, m := range res.Matches {
		if i >= *printMatches {
			fmt.Printf("... and %d more\n", len(res.Matches)-i)
			break
		}
		fmt.Printf("  match %d: events %v\n", i+1, m.IDs())
	}

	if *compare {
		ecep, err := core.RunECEPObserved(schema, pats, st, cfg.Workers(), reg)
		if err != nil {
			fatal(err)
		}
		cmp := core.Compare(res, ecep)
		fmt.Printf("exact CEP: %d matches, %.0f events/s\n", len(ecep.Matches), ecep.Throughput())
		fmt.Printf("recall %.4f  F1 %.4f  dropped matches %d  throughput gain %.2fx\n",
			cmp.Recall, cmp.F1, cmp.Counts.FN, cmp.Gain)
		reg.Gauge("quality.recall").Set(cmp.Recall)
		reg.Gauge("quality.f1").Set(cmp.F1)
		reg.Gauge("quality.dropped_matches").Set(float64(cmp.Counts.FN))
		for i, want := range ecep.KeysByPattern {
			var got map[string]bool
			if i < len(res.KeysByPattern) {
				got = res.KeysByPattern[i]
			}
			c := metrics.MatchSets(got, want)
			fmt.Printf("  pattern %d: recall %.4f  dropped %d (of %d exact matches)\n", i, c.Recall(), c.FN, len(want))
			reg.Gauge(fmt.Sprintf("quality.pattern.%d.recall", i)).Set(c.Recall())
			reg.Gauge(fmt.Sprintf("quality.pattern.%d.dropped_matches", i)).Set(float64(c.FN))
		}
	}
	if reg != nil {
		raw, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsOut, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
	if pl.Trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		snap := pl.Trace.Snapshot()
		if err := snap.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%d window traces written to %s (1 per %d events; analyze with dlacep-inspect -trace)\n",
			len(snap.Traces), *traceOut, pl.Trace.Stride())
	}
}
