// Command dlacep-inspect analyzes a pattern without running it: it
// validates and compiles the query, reports its structure (operators,
// aliases, type and attribute sets), estimates the ECEP cost Φ(W, R, SEL)
// of Section 3.2 against a sample stream, and prints the ZStream tree plan
// a cost-based optimizer would choose. With -model it instead inspects a
// saved model file: kind, format version, checksum, patterns, and the
// parameter inventory — verifying integrity in the process.
//
// Usage:
//
//	dlacep-inspect -pattern 'PATTERN SEQ(S1 a, S2 b) WHERE a.vol < b.vol WITHIN 150' -data stream.csv
//	dlacep-inspect -model model.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dlacep/internal/acep"
	"dlacep/internal/cep"
	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/obs/trace"
	"dlacep/internal/pattern"
	"dlacep/internal/zstream"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlacep-inspect:", err)
	os.Exit(1)
}

func main() {
	patSrc := flag.String("pattern", "", "pattern in the query language")
	dataPath := flag.String("data", "", "optional sample stream CSV for statistics")
	sample := flag.Int("sample", 2000, "Monte-Carlo samples per condition selectivity")
	modelPath := flag.String("model", "", "saved model to inspect instead of a pattern")
	tracePath := flag.String("trace", "", "trace file(s) from -trace-out (comma-separated JSONL) to aggregate into a per-stage latency breakdown")
	flag.Parse()
	if *tracePath != "" {
		inspectTraces(*tracePath)
		return
	}
	if *modelPath != "" {
		inspectModel(*modelPath)
		return
	}
	if *patSrc == "" {
		fmt.Fprintln(os.Stderr, "usage: dlacep-inspect -pattern 'PATTERN ...' [-data stream.csv]\n   or: dlacep-inspect -model model.json\n   or: dlacep-inspect -trace traces.jsonl")
		os.Exit(2)
	}
	p, err := pattern.Parse(*patSrc)
	if err != nil {
		fatal(err)
	}

	fmt.Println("pattern:", p)
	fmt.Println("window: ", p.Window.Kind, p.Window.Size)
	fmt.Println("strategy:", p.Strategy)
	fmt.Printf("primitives: %d (%d positive, %d negated)\n",
		len(p.Prims()), len(p.PositivePrims()), len(p.NegPrims()))
	fmt.Println("event types:", p.TypeSet())
	fmt.Println("attributes: ", p.AttrSet())
	fmt.Println("conditions: ", len(p.Where))
	if p.HasNegation() {
		fmt.Println("note: negation present — DLACEP may emit false positives; F1 is the quality metric (Section 4.4)")
	}

	// engine compilation check
	schemaNames := p.AttrSet()
	if len(schemaNames) == 0 {
		schemaNames = []string{"vol"}
	}
	schema := event.NewSchema(schemaNames...)
	if _, err := cep.New(p, schema); err != nil {
		fatal(fmt.Errorf("engine compilation: %w", err))
	}
	fmt.Println("NFA engine: compiles OK")

	if *dataPath == "" {
		fmt.Println("\n(no -data given: skipping statistics, Φ estimate, and plan)")
		return
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	st, err := event.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nsample stream: %d events, %d types\n", st.Len(), len(st.TypeCounts()))

	stats := zstream.EstimateStatistics(p, st, *sample, 1)
	prims := p.PositivePrims()
	rates := make([]float64, len(prims))
	for i, pr := range prims {
		for _, t := range pr.Types {
			rates[i] += stats.Rate[t]
		}
		fmt.Printf("  rate(%s) = %.5f\n", pr.Alias, rates[i])
	}
	for _, c := range p.Where {
		if sel, ok := stats.Sel[c.String()]; ok {
			fmt.Printf("  sel(%s) = %.4f\n", c, sel)
		}
	}

	model := acep.NewModel(rates)
	// attach measured pairwise selectivities where conditions link prims
	idx := map[string]int{}
	for i, pr := range prims {
		idx[pr.Alias] = i
	}
	for _, c := range p.Where {
		aliases := c.Aliases()
		if len(aliases) == 2 {
			i, ok1 := idx[aliases[0]]
			j, ok2 := idx[aliases[1]]
			if ok1 && ok2 {
				if sel, ok := stats.Sel[c.String()]; ok {
					model.SetSel(i, j, sel)
				}
			}
		}
	}
	w := float64(p.Window.Size)
	fmt.Printf("\nΦ(W,R,SEL) ≈ %.1f expected partial+full matches per window\n", model.Phi(w))
	fmt.Printf("C_ECEP per stream event ≈ %.2f instances\n", model.Phi(w)/w)

	// ZStream plan (sequence/conjunction patterns only)
	if en, err := zstream.New(p, st.Schema, stats); err == nil {
		for i, plan := range en.Plans() {
			fmt.Printf("ZStream plan %d: %v (estimated cost %.1f)\n", i, plan.Root, plan.Root.Cost)
		}
	} else {
		fmt.Printf("ZStream plan: n/a (%v)\n", err)
	}
}

// inspectTraces aggregates one or more -trace-out files into the
// per-stage critical-path breakdown: p50/p99 per stage, each stage's share
// of summed end-to-end window latency, ring-wait share (the sharded
// pipeline's handoff cost), and the dominant-stage diagnosis line.
func inspectTraces(paths string) {
	var trs []trace.WindowTrace
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		recs, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		trs = append(trs, recs...)
	}
	fmt.Printf("trace records: %d\n", len(trs))
	trace.Aggregate(trs).Format(os.Stdout)

	// Traces recorded under an adaptive controller carry the ladder level
	// their window was served at; when any do, break the aggregate down per
	// level so a degraded interval's latency profile is separable from the
	// healthy one's.
	byLevel := trace.AggregateByLevel(trs)
	stamped := false
	for lv := range byLevel {
		if lv >= 0 {
			stamped = true
		}
	}
	if !stamped {
		return
	}
	levels := make([]int, 0, len(byLevel))
	for lv := range byLevel {
		levels = append(levels, lv)
	}
	sort.Ints(levels)
	for _, lv := range levels {
		name := core.Level(lv).String()
		if lv < 0 {
			name = "unstamped (no controller)"
		}
		fmt.Printf("\n-- controller level %s: %d window(s) --\n", name, byLevel[lv].Windows)
		byLevel[lv].Format(os.Stdout)
	}
}

// inspectModel prints a saved model's identity, integrity, and parameter
// inventory (see core.InspectModel). A tampered or future-format file fails
// here with the loader's error, making this the quickest integrity check.
func inspectModel(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	info, err := core.InspectModel(f)
	if err != nil {
		fatal(err)
	}
	fmt.Println("kind:     ", info.Kind)
	if info.Format == 0 {
		fmt.Println("format:    v1 (legacy, no checksum)")
	} else {
		fmt.Printf("format:    v%d\n", info.Format)
	}
	if info.Checksum != "" {
		fmt.Println("sha256:   ", info.Checksum, "(verified)")
	}
	fmt.Println("schema:   ", info.Schema)
	for _, p := range info.Patterns {
		fmt.Println("pattern:  ", p)
	}
	fmt.Printf("threshold: %g\n", info.Threshold)
	fmt.Printf("arch:      %s, hidden %d, layers %d, mark %d, step %d\n",
		archName(info.Config), info.Config.Hidden, info.Config.Layers,
		info.Config.MarkSize, info.Config.StepSize)
	fmt.Printf("params:    %d tensors, %d scalars\n", len(info.Params), info.ParamCount)
	for _, p := range info.Params {
		fmt.Printf("  %-40s %5d x %-5d = %d\n", p.Name, p.Rows, p.Cols, p.Rows*p.Cols)
	}
}

func archName(cfg core.Config) string {
	if cfg.Arch == "" {
		return "bilstm"
	}
	return cfg.Arch
}
