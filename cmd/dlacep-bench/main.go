// Command dlacep-bench regenerates the paper's experimental figures.
//
// Usage:
//
//	dlacep-bench -fig 8           # reproduce Figure 8 at quick scale
//	dlacep-bench -fig all -csv    # everything, CSV output
//	dlacep-bench -fig 12 -scale paper
//	dlacep-bench -ramp -scale smoke -ramp-out ramp.json   # adaptive load ramp
//
// See DESIGN.md for the figure-to-module index and EXPERIMENTS.md for
// recorded quick-scale results against the paper's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dlacep/internal/harness"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 8, 9, 10, 11, 12, 13, 14, ablations, or all")
	scaleName := flag.String("scale", "quick", "experiment scale: smoke, quick, or paper")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	parallel := flag.Int("parallel", 0, "pipeline worker bound for every experiment; 0 or 1 keeps the paper's single-core semantics")
	shards := flag.Int("shards", 0, "run DLACEP measurement passes through the key-sharded pipeline with this many marking workers; 0 or 1 sequential")
	shardBatch := flag.Int("shard-batch", 1, "windows batched per filter call in -shards mode (K)")
	metricsOut := flag.String("metrics-out", "", "write the cumulative JSON telemetry snapshot to this file after all figures")
	traceOut := flag.String("trace-out", "", "write sampled per-window pipeline traces (JSON Lines) to this file after all figures; analyze with dlacep-inspect -trace")
	traceEvery := flag.Int("trace-every", 64, "with -trace-out: sample one window trace per this many events")
	traceRing := flag.Int("trace-ring", trace.DefaultRing, "with -trace-out: retain at most this many completed traces")
	ramp := flag.Bool("ramp", false, "run the adaptive load-ramp scenario (controller vs pinned-exact baseline) instead of figures")
	sloP99 := flag.Duration("slo-p99", 0, "with -ramp: per-window p99 SLO handed to the controller (0 = auto-calibrate)")
	rampOut := flag.String("ramp-out", "", "with -ramp: write the RampReport JSON to this file")
	flag.Parse()

	var sc harness.Scale
	switch *scaleName {
	case "smoke":
		sc = harness.Smoke()
	case "quick":
		sc = harness.Quick()
	case "paper":
		sc = harness.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (smoke|quick|paper)\n", *scaleName)
		os.Exit(2)
	}
	sc.Parallelism = *parallel
	sc.Shards = *shards
	sc.ShardBatch = *shardBatch
	if *metricsOut != "" {
		sc.Obs = obs.NewRegistry()
	}
	if *traceOut != "" {
		sc.Trace = trace.New(*traceEvery, *traceRing)
	}

	if *ramp {
		if err := runRamp(sc, *sloP99, *rampOut, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "dlacep-bench:", err)
			os.Exit(1)
		}
		writeSnapshots(sc, *metricsOut, *traceOut)
		return
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = harness.Figures()
	}
	for _, f := range figs {
		start := time.Now()
		reports, err := harness.Run(f, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		for _, rep := range reports {
			if *csv {
				fmt.Print(rep.CSV())
			} else {
				fmt.Println(rep.String())
			}
		}
		if !*csv {
			fmt.Printf("(figure %s took %v at scale %s)\n\n", f, time.Since(start).Round(time.Millisecond), sc.Name)
		}
	}
	writeSnapshots(sc, *metricsOut, *traceOut)
}

// runRamp executes the adaptive load-ramp scenario and prints its report.
func runRamp(sc harness.Scale, slo time.Duration, out string, csv bool) error {
	if sc.Obs == nil {
		// The scenario's recall accounting and controller telemetry flow
		// through the registry even when no -metrics-out was requested.
		sc.Obs = obs.NewRegistry()
	}
	start := time.Now()
	rep, err := harness.LoadRamp(sc, harness.RampOptions{SLO: slo})
	if err != nil {
		return err
	}
	text := rep.Rows()
	if csv {
		fmt.Print(text.CSV())
	} else {
		fmt.Println(text.String())
		fmt.Printf("(ramp took %v at scale %s)\n\n", time.Since(start).Round(time.Millisecond), sc.Name)
	}
	if out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("ramp report written to %s\n", out)
	}
	return nil
}

// writeSnapshots exports the cumulative telemetry and trace files, when
// their flags requested them.
func writeSnapshots(sc harness.Scale, metricsOut, traceOut string) {
	if sc.Obs != nil && metricsOut != "" {
		raw, err := json.MarshalIndent(sc.Obs.Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlacep-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(metricsOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dlacep-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsOut)
	}
	if sc.Trace != nil && traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlacep-bench:", err)
			os.Exit(1)
		}
		snap := sc.Trace.Snapshot()
		if err := snap.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "dlacep-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dlacep-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%d window traces written to %s (1 per %d events; analyze with dlacep-inspect -trace)\n",
			len(snap.Traces), traceOut, sc.Trace.Stride())
	}
}
