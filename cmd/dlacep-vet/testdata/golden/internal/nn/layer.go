// Package nn is the golden-fixture mirror of the real module's layer
// surface: just enough for aliasguard and hotalloc to bite, so the JSON
// golden file exercises both contract analyzers.
package nn

// Layer is the aliasing-contract interface; Forward must treat x as
// immutable.
type Layer interface {
	Forward(x []float64) []float64
}

// Scale violates the contract: Forward writes through its input slice.
type Scale struct{ K float64 }

func (s *Scale) Forward(x []float64) []float64 {
	for i := range x {
		x[i] *= s.K
	}
	return x
}

// Apply is a hot-path root that allocates a fresh output slice per call.
//
//dlacep:hotpath
func Apply(l Layer, x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, l.Forward(x))
	return out
}
