// Package core exercises a legacy determinism analyzer so the golden
// file covers the pre-existing suite alongside the contract analyzers.
package core

import "math/rand"

// Jitter uses the process-global RNG, which the determinism contract
// forbids.
func Jitter(n int) int {
	return rand.Intn(n)
}
