// Package shard mirrors the ownership-annotation surface for the JSON
// golden file.
package shard

type worker struct {
	//dlacep:owned
	staged []int
}

func (w *worker) push(v int) { w.staged = append(w.staged, v) }

// Drain violates confinement: a plain function touching owned state.
func Drain(w *worker) int {
	return len(w.staged)
}
