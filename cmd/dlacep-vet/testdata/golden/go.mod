module dlacep

go 1.22
