package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("dlacep-vet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

func TestRunFindsFixtureViolations(t *testing.T) {
	root := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module dlacep\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

import "math/rand"

func draw() int { return rand.Intn(6) }

func boom() { panic("no") }
`)
	var out, errOut strings.Builder
	code := run([]string{"-C", root, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (findings)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"globalrand", "libpanic", "rand.Intn"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// Scoping: restricting to a clean subtree must exit 0.
	out.Reset()
	errOut.Reset()
	write("internal/shed/ok.go", "package shed\n\nfunc ok() {}\n")
	if code := run([]string{"-C", root, "./internal/shed"}, &out, &errOut); code != 0 {
		t.Fatalf("clean subtree: exit %d, want 0\nstderr:\n%s", code, errOut.String())
	}
}

// TestJSONGoldenOutput pins the -json byte format against a committed
// golden file: the fixture module under testdata/golden seeds one finding
// per contract analyzer (hotalloc, aliasguard, spscowner) plus one from the
// legacy determinism suite (globalrand), and the encoded output — module-
// relative slash paths, sorted by file/line/col/analyzer — must be
// byte-identical across checkouts and operating systems.
func TestJSONGoldenOutput(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{"-C", filepath.Join("testdata", "golden"), "-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (findings)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.String() != string(golden) {
		t.Errorf("-json output diverged from testdata/golden.json\ngot:\n%s\nwant:\n%s", out.String(), golden)
	}
	for _, analyzer := range []string{"hotalloc", "aliasguard", "spscowner", "globalrand"} {
		if !strings.Contains(out.String(), `"analyzer": "`+analyzer+`"`) {
			t.Errorf("golden output missing a %s finding:\n%s", analyzer, out.String())
		}
	}

	// A clean run must encode as an empty array, never null: downstream
	// tooling (the CI artifact consumer) indexes the result unconditionally.
	out.Reset()
	errOut.Reset()
	code = run([]string{"-C", filepath.Join("testdata", "golden"), "-json", "-only", "maporder", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("clean -json run: exit %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if out.String() != "[]\n" {
		t.Errorf("clean -json run = %q, want %q", out.String(), "[]\n")
	}
}

func TestRunFlagHandling(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{"floatcmp", "globalrand", "maporder", "rawgoroutine", "libpanic"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("-only nosuch: exit %d, want 2", code)
	}
	if code := run([]string{"../escape"}, &out, &errOut); code != 2 {
		t.Fatalf("escaping pattern: exit %d, want 2", code)
	}
}

func TestPackageFilter(t *testing.T) {
	keep, err := packageFilter([]string{"./internal/...", "./cmd/dlacep-vet"})
	if err != nil {
		t.Fatal(err)
	}
	for rel, want := range map[string]bool{
		"internal/core":     true,
		"internal/nn":       true,
		"cmd/dlacep-vet":    true,
		"cmd/dlacep-run":    false,
		"examples/security": false,
		"":                  false,
	} {
		if keep(rel) != want {
			t.Errorf("keep(%q) = %v, want %v", rel, keep(rel), want)
		}
	}
	all, err := packageFilter([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if !all("") || !all("internal/deep/nested") {
		t.Error("./... must match everything")
	}
}
