// Command dlacep-vet runs the DLACEP invariant analyzers (package
// internal/analysis) over the module: determinism (globalrand, maporder),
// numerics (floatcmp), and concurrency/robustness (rawgoroutine,
// libpanic) checks that go vet does not perform but the paper's
// reproducibility claims depend on.
//
// Usage:
//
//	dlacep-vet [flags] [packages]
//
// Packages are module-relative patterns: "./..." (default) analyzes the
// whole module, "./internal/core" one package, "./internal/..." a
// subtree. Exit status is 0 when clean, 1 when findings were reported,
// and 2 on usage or load errors.
//
// Findings are suppressed line-by-line with
//
//	//dlacep:ignore <analyzer> <one-line reason>
//
// on the offending line or the line above it; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dlacep/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dlacep-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer subset to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	dir := fs.String("C", "", "change to this directory before locating the module")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		sel, unknown := analysis.ByName(strings.Split(*only, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(stderr, "dlacep-vet: unknown analyzers: %s\n", strings.Join(unknown, ", "))
			return 2
		}
		analyzers = sel
	}

	start := *dir
	if start == "" {
		var err error
		if start, err = os.Getwd(); err != nil {
			fmt.Fprintf(stderr, "dlacep-vet: %v\n", err)
			return 2
		}
	}
	root, err := analysis.FindModuleRoot(start)
	if err != nil {
		fmt.Fprintf(stderr, "dlacep-vet: %v\n", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "dlacep-vet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep, err := packageFilter(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "dlacep-vet: %v\n", err)
		return 2
	}
	filtered := *mod
	filtered.Pkgs = nil
	for _, p := range mod.Pkgs {
		if keep(p.Rel) {
			filtered.Pkgs = append(filtered.Pkgs, p)
		}
	}

	diags := analysis.Run(&filtered, analyzers)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonFindings(diags, root)); err != nil {
			fmt.Fprintf(stderr, "dlacep-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, shorten(d, root))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dlacep-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is the stable machine-readable shape of one diagnostic.
// Paths are module-relative with forward slashes, so the encoded output is
// byte-identical across checkouts and operating systems; the slice order is
// the analysis.Run order (file, line, column, analyzer).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonFindings converts diagnostics for -json output. The result is never
// nil, so a clean run encodes as [] rather than null.
func jsonFindings(diags []analysis.Diagnostic, root string) []jsonFinding {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := filepath.ToSlash(d.Pos.Filename)
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// packageFilter turns ./-style patterns into a predicate over
// module-relative package dirs.
func packageFilter(patterns []string) (func(rel string) bool, error) {
	type pat struct {
		prefix string
		tree   bool
	}
	var pats []pat
	for _, raw := range patterns {
		p := filepath.ToSlash(raw)
		p = strings.TrimPrefix(p, "./")
		tree := false
		if strings.HasSuffix(p, "...") {
			tree = true
			p = strings.TrimSuffix(p, "...")
			p = strings.TrimSuffix(p, "/")
		}
		if strings.HasPrefix(p, "/") || strings.HasPrefix(p, "..") {
			return nil, fmt.Errorf("package pattern %q must be module-relative (./pkg or ./pkg/...)", raw)
		}
		if p == "." {
			p = ""
		}
		pats = append(pats, pat{prefix: p, tree: tree})
	}
	return func(rel string) bool {
		for _, p := range pats {
			if p.tree {
				if p.prefix == "" || rel == p.prefix || strings.HasPrefix(rel, p.prefix+"/") {
					return true
				}
			} else if rel == p.prefix {
				return true
			}
		}
		return false
	}, nil
}

// shorten renders a diagnostic with the filename relative to the module
// root, keeping output stable across checkouts.
func shorten(d analysis.Diagnostic, root string) string {
	s := d.String()
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = fmt.Sprintf("%s:%d:%d: %s: %s", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return s
}
