// Command dlacep-serve exposes a trained DLACEP model as a TCP match
// service, or streams a CSV file to such a service as a client.
//
// Server:
//
//	dlacep-serve -model model.json -listen :7878
//
// Client (streams a dataset and prints matches):
//
//	dlacep-serve -connect localhost:7878 -data stream.csv
//
// Protocol: clients send "TYPE,TS,ATTR1,..." lines; the server answers with
// JSON lines carrying matches and, after FLUSH or EOF, a summary.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/obs"
	"dlacep/internal/server"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlacep-serve:", err)
	os.Exit(1)
}

func main() {
	modelPath := flag.String("model", "model.json", "trained model (server mode)")
	listen := flag.String("listen", "", "address to serve on, e.g. :7878")
	connect := flag.String("connect", "", "server address to stream to (client mode)")
	dataPath := flag.String("data", "", "stream CSV to send (client mode)")
	parallel := flag.Int("parallel", 0, "per-connection pipeline worker bound (server mode); 0 or 1 sequential")
	admin := flag.String("admin", "", "admin HTTP address for /metrics and /healthz, e.g. 127.0.0.1:7879 (server mode)")
	pprofOn := flag.Bool("pprof", false, "also expose /debug/pprof/ on the admin address")
	flag.Parse()

	switch {
	case *listen != "":
		runServer(*modelPath, *listen, *parallel, *admin, *pprofOn)
	case *connect != "":
		runClient(*connect, *dataPath)
	default:
		fmt.Fprintln(os.Stderr, "usage: dlacep-serve -listen :7878 -model model.json\n   or: dlacep-serve -connect host:7878 -data stream.csv")
		os.Exit(2)
	}
}

func runServer(modelPath, listen string, parallel int, admin string, pprofOn bool) {
	raw, err := os.ReadFile(modelPath)
	if err != nil {
		fatal(err)
	}
	// Peek once for configuration; per-connection filters reload from the
	// same bytes (trained networks are stateful during inference).
	probe, pats, schema, err := core.LoadModel(bytes.NewReader(raw))
	if err != nil {
		fatal(err)
	}
	var cfg core.Config
	switch f := probe.(type) {
	case *core.EventNetwork:
		cfg = f.Cfg
	case core.WindowToEvent:
		cfg = f.F.(*core.WindowNetwork).Cfg
	default:
		cfg = core.DefaultConfig(int(pats[0].Window.Size))
	}
	cfg.Parallelism = parallel
	srv, err := server.New(schema, pats, cfg, func() (core.EventFilter, error) {
		f, _, _, err := core.LoadModel(bytes.NewReader(raw))
		return f, err
	})
	if err != nil {
		fatal(err)
	}
	if pprofOn && admin == "" {
		fatal(fmt.Errorf("-pprof needs -admin"))
	}
	if admin != "" {
		srv.Obs = obs.NewRegistry()
		alis, err := net.Listen("tcp", admin)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("admin endpoints (/metrics, /healthz%s) on %s\n",
			map[bool]string{true: ", /debug/pprof/"}[pprofOn], alis.Addr())
		go func() {
			if err := http.Serve(alis, srv.AdminHandler(pprofOn)); err != nil {
				fmt.Fprintln(os.Stderr, "dlacep-serve: admin:", err)
			}
		}()
	}
	lis, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving %d pattern(s) on %s\n", len(pats), lis.Addr())
	if err := srv.Serve(lis); err != nil {
		fatal(err)
	}
}

func runClient(addr, dataPath string) {
	if dataPath == "" {
		fatal(fmt.Errorf("client mode needs -data"))
	}
	f, err := os.Open(dataPath)
	if err != nil {
		fatal(err)
	}
	st, err := event.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	c, err := server.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	for i := range st.Events {
		if err := c.Send(st.Events[i]); err != nil {
			fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		fatal(err)
	}
	for {
		msg, err := c.Recv()
		if err != nil {
			fatal(err)
		}
		switch {
		case msg.Err != "":
			fatal(fmt.Errorf("server: %s", msg.Err))
		case msg.Match != nil:
			fmt.Printf("match: %v\n", msg.Match.IDs)
		case msg.Summary != nil:
			fmt.Printf("summary: %d events, %d matches, filter ratio %.3f, %.0f events/s\n",
				msg.Summary.Events, msg.Summary.Matches, msg.Summary.FilterRatio, msg.Summary.ThroughputS)
			return
		}
	}
}
