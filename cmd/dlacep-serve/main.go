// Command dlacep-serve exposes a trained DLACEP model as a TCP match
// service, or streams a CSV file to such a service as a client.
//
// Server, from a single model file:
//
//	dlacep-serve -model model.json -listen :7878
//
// Server, from a model registry with drift-triggered hot swapping (the
// active version is served; a lifecycle controller audits it, retrains on
// drift, and swaps in validated candidates without dropping connections):
//
//	dlacep-serve -registry ./registry -family stock -listen :7878 \
//	  -admin 127.0.0.1:7879
//
// Client (streams a dataset and prints matches):
//
//	dlacep-serve -connect localhost:7878 -data stream.csv
//
// Protocol: clients send "TYPE,TS,ATTR1,..." lines; the server answers with
// JSON lines carrying matches and, after FLUSH or EOF, a summary.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dlacep/internal/adapt"
	"dlacep/internal/core"
	"dlacep/internal/event"
	"dlacep/internal/lifecycle"
	"dlacep/internal/obs"
	"dlacep/internal/obs/trace"
	"dlacep/internal/server"
	"dlacep/internal/shed"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlacep-serve:", err)
	os.Exit(1)
}

// serveOpts collects the server-mode flags.
type serveOpts struct {
	modelPath  string
	listen     string
	parallel   int
	shards     int
	shardBatch int
	admin      string
	pprofOn    bool
	traceEvery int
	traceRing  int
	adaptOn    bool
	sloP99     time.Duration

	registry        string
	family          string
	swapEpsilon     float64
	retrainEpochs   int
	minWindows      int
	checkpointEvery int
	auditEvery      int
}

func main() {
	var o serveOpts
	flag.StringVar(&o.modelPath, "model", "model.json", "trained model (server mode, ignored with -registry)")
	flag.StringVar(&o.listen, "listen", "", "address to serve on, e.g. :7878")
	connect := flag.String("connect", "", "server address to stream to (client mode)")
	dataPath := flag.String("data", "", "stream CSV to send (client mode)")
	flag.IntVar(&o.parallel, "parallel", 0, "per-connection pipeline worker bound (server mode); 0 or 1 sequential")
	flag.IntVar(&o.shards, "shards", 0, "key-sharded serving: marking workers per connection, events hash-partitioned by type; 0 or 1 sequential")
	flag.IntVar(&o.shardBatch, "shard-batch", 1, "windows batched per filter call in -shards mode (K)")
	flag.StringVar(&o.admin, "admin", "", "admin HTTP address for /metrics and /healthz, e.g. 127.0.0.1:7879 (server mode)")
	flag.BoolVar(&o.pprofOn, "pprof", false, "also expose /debug/pprof/ on the admin address")
	flag.IntVar(&o.traceEvery, "trace-every", 0, "sample one per-window pipeline trace per this many events, served on the admin /traces endpoint (0 off; server mode)")
	flag.IntVar(&o.traceRing, "trace-ring", trace.DefaultRing, "completed traces retained for /traces")
	flag.BoolVar(&o.adaptOn, "adapt", false, "run the adaptive degradation controller: connections are served through a mode-switchable processor moved along exact -> filtered -> shedding to hold -slo-p99 (server mode, sequential only)")
	flag.DurationVar(&o.sloP99, "slo-p99", 0, "with -adapt: per-window p99 service-time SLO the controller defends, e.g. 2ms")
	flag.StringVar(&o.registry, "registry", "", "model registry directory; serves the family's active version with hot swapping")
	flag.StringVar(&o.family, "family", "default", "model family within -registry")
	flag.Float64Var(&o.swapEpsilon, "swap-epsilon", 0.02, "promotion slack: candidate F1 may lag live F1 by this much")
	flag.IntVar(&o.retrainEpochs, "retrain-epochs", 10, "epoch bound for drift-triggered retraining")
	flag.IntVar(&o.minWindows, "min-windows", 8, "buffered windows required before a retrain cycle runs")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 0, "checkpoint retraining runs into the registry every N epochs (0 off)")
	flag.IntVar(&o.auditEvery, "audit-every", 0, "drift-audit the live model once per N served windows (0 = library default)")
	flag.Parse()

	switch {
	case o.listen != "":
		runServer(o)
	case *connect != "":
		runClient(*connect, *dataPath)
	default:
		fmt.Fprintln(os.Stderr, "usage: dlacep-serve -listen :7878 -model model.json\n   or: dlacep-serve -listen :7878 -registry dir -family name\n   or: dlacep-serve -connect host:7878 -data stream.csv")
		os.Exit(2)
	}
}

func runServer(o serveOpts) {
	if o.pprofOn && o.admin == "" {
		fatal(fmt.Errorf("-pprof needs -admin"))
	}
	var (
		srv *server.Server
		ctl *lifecycle.Controller
		err error
	)
	if o.registry != "" {
		srv, ctl, err = registryServer(o)
	} else {
		srv, err = fileServer(o)
	}
	if err != nil {
		fatal(err)
	}
	srv.Shards = o.shards
	srv.ShardBatch = o.shardBatch
	if o.traceEvery > 0 {
		srv.Trace = trace.New(o.traceEvery, o.traceRing)
	}
	var actl *adapt.Controller
	if o.adaptOn {
		if o.shards > 1 {
			fatal(fmt.Errorf("-adapt serves through the sequential adaptive processor; drop -shards"))
		}
		if o.sloP99 <= 0 {
			fatal(fmt.Errorf("-adapt needs -slo-p99, e.g. -slo-p99=2ms"))
		}
		if srv.Obs == nil {
			// The controller's sensors and its published ladder state live
			// in the registry even when no -admin listener exports them.
			srv.Obs = obs.NewRegistry()
		}
		patterns := srv.Health().Patterns
		board := core.NewLevelBoard(patterns)
		actl, err = adapt.New(adapt.Config{SLO: o.sloP99}, board, srv.Obs)
		if err != nil {
			fatal(err)
		}
		srv.Board = board
		srv.NewGates = func() []core.Gate {
			gates := make([]core.Gate, patterns)
			for i := range gates {
				gates[i] = shed.NewRandom(0, int64(i)+1)
			}
			return gates
		}
		fmt.Printf("adaptive controller on: %d pattern(s), p99 SLO %v\n", patterns, o.sloP99)
	}
	if o.admin != "" {
		alis, err := net.Listen("tcp", o.admin)
		if err != nil {
			fatal(err)
		}
		endpoints := "/metrics, /traces, /healthz"
		var extra []server.AdminRoute
		if ctl != nil {
			extra = ctl.AdminRoutes()
			endpoints += ", /models, /swap, /rollback"
		}
		if actl != nil {
			extra = append(extra, actl.AdminRoutes()...)
			endpoints += ", /controller"
		}
		if o.pprofOn {
			endpoints += ", /debug/pprof/"
		}
		fmt.Printf("admin endpoints (%s) on %s\n", endpoints, alis.Addr())
		go func() {
			if err := http.Serve(alis, srv.AdminHandler(o.pprofOn, extra...)); err != nil {
				fmt.Fprintln(os.Stderr, "dlacep-serve: admin:", err)
			}
		}()
	}
	if ctl != nil {
		ctl.Start()
		defer ctl.Stop()
	}
	if actl != nil {
		actl.Start()
		defer actl.Stop()
	}
	lis, err := net.Listen("tcp", o.listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving on %s\n", lis.Addr())
	if err := srv.Serve(lis); err != nil {
		fatal(err)
	}
}

// fileServer serves one frozen model file, the pre-registry mode.
func fileServer(o serveOpts) (*server.Server, error) {
	raw, err := os.ReadFile(o.modelPath)
	if err != nil {
		return nil, err
	}
	// Peek once for configuration; per-connection filters reload from the
	// same bytes (trained networks are stateful during inference).
	probe, pats, schema, err := core.LoadModel(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	var cfg core.Config
	switch f := probe.(type) {
	case *core.EventNetwork:
		cfg = f.Cfg
	case core.WindowToEvent:
		cfg = f.F.(*core.WindowNetwork).Cfg
	default:
		cfg = core.DefaultConfig(int(pats[0].Window.Size))
	}
	cfg.Parallelism = o.parallel
	srv, err := server.New(schema, pats, cfg, func() (core.EventFilter, error) {
		f, _, _, err := core.LoadModel(bytes.NewReader(raw))
		return f, err
	})
	if err != nil {
		return nil, err
	}
	if o.admin != "" {
		srv.Obs = obs.NewRegistry()
	}
	fmt.Printf("model %s: %d pattern(s)\n", o.modelPath, len(pats))
	return srv, nil
}

// registryServer serves a family's active registry version under a
// lifecycle controller: drift audits, retraining, shadow validation, and
// atomic hot swaps.
func registryServer(o serveOpts) (*server.Server, *lifecycle.Controller, error) {
	reg, err := lifecycle.Open(o.registry)
	if err != nil {
		return nil, nil, err
	}
	version, err := reg.Active(o.family)
	if err != nil {
		return nil, nil, err
	}
	if version == 0 {
		latest, err := reg.Latest(o.family)
		if err != nil {
			return nil, nil, err
		}
		version = latest.Version
		fmt.Printf("family %q has no promoted version; serving latest v%d\n", o.family, version)
	}
	filter, pats, schema, err := reg.LoadFilter(o.family, version)
	if err != nil {
		return nil, nil, err
	}
	live, ok := filter.(*core.EventNetwork)
	if !ok {
		return nil, nil, fmt.Errorf("registry serving needs an event-network model, %s v%d is %T", o.family, version, filter)
	}
	cfg := live.Cfg
	cfg.Parallelism = o.parallel
	srv, err := server.New(schema, pats, cfg, func() (core.EventFilter, error) {
		return live.CloneFilter(), nil
	})
	if err != nil {
		return nil, nil, err
	}
	srv.Obs = obs.NewRegistry()
	// Stamp the registry version on the generation counter so /healthz and
	// /models agree from the first connection on.
	if _, err := srv.SwapFilter(version, func() (core.EventFilter, error) {
		return live.CloneFilter(), nil
	}); err != nil {
		return nil, nil, err
	}
	ctl, err := lifecycle.NewController(lifecycle.ControllerConfig{
		Registry:        reg,
		Family:          o.family,
		Schema:          schema,
		Patterns:        pats,
		Core:            live.Cfg, // retraining builds sequential candidates
		Live:            live,
		LiveVersion:     version,
		Swap:            srv.SwapFilter,
		Epsilon:         o.swapEpsilon,
		RetrainEpochs:   o.retrainEpochs,
		MinWindows:      o.minWindows,
		CheckpointEvery: o.checkpointEvery,
		Drift:           core.DriftOptions{AuditEvery: o.auditEvery, Obs: srv.Obs},
		Obs:             srv.Obs,
	})
	if err != nil {
		return nil, nil, err
	}
	srv.OnEvent = ctl.ObserveEvent
	fmt.Printf("registry %s family %q: serving v%d, %d pattern(s)\n", o.registry, o.family, version, len(pats))
	return srv, ctl, nil
}

func runClient(addr, dataPath string) {
	if dataPath == "" {
		fatal(fmt.Errorf("client mode needs -data"))
	}
	f, err := os.Open(dataPath)
	if err != nil {
		fatal(err)
	}
	st, err := event.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	c, err := server.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	for i := range st.Events {
		if err := c.Send(st.Events[i]); err != nil {
			fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		fatal(err)
	}
	for {
		msg, err := c.Recv()
		if err != nil {
			fatal(err)
		}
		switch {
		case msg.Err != "":
			fatal(fmt.Errorf("server: %s", msg.Err))
		case msg.Match != nil:
			fmt.Printf("match: %v\n", msg.Match.IDs)
		case msg.Summary != nil:
			fmt.Printf("summary: %d events, %d matches, filter ratio %.3f, %.0f events/s\n",
				msg.Summary.Events, msg.Summary.Matches, msg.Summary.FilterRatio, msg.Summary.ThroughputS)
			return
		}
	}
}
