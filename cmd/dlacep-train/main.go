// Command dlacep-train trains a DLACEP filter network on a historical
// stream and saves the model for later use by dlacep-run.
//
// Usage:
//
//	dlacep-train -data stock.csv \
//	  -pattern 'PATTERN SEQ(S1 a, S2 b, S3 c) WHERE 0.5 * a.vol < c.vol WITHIN 150' \
//	  -net event -epochs 20 -out model.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/pattern"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlacep-train:", err)
	os.Exit(1)
}

func main() {
	dataPath := flag.String("data", "", "training stream CSV (from dlacep-datagen or your own)")
	patSrc := flag.String("pattern", "", "pattern in the PATTERN ... WITHIN ... language")
	netKind := flag.String("net", "event", "filter variant: event or window")
	hidden := flag.Int("hidden", 75, "BiLSTM hidden size per direction")
	layers := flag.Int("layers", 3, "stacked BiLSTM layers (or TCN blocks)")
	arch := flag.String("arch", "bilstm", "filter body: bilstm or tcn")
	epochs := flag.Int("epochs", 30, "maximum training epochs")
	seed := flag.Int64("seed", 1, "initialization/shuffling seed")
	calibrate := flag.Float64("calibrate", 0, "optional target event/window recall for threshold calibration (0 = argmax decoding)")
	out := flag.String("out", "model.json", "model output path")
	flag.Parse()

	if *dataPath == "" || *patSrc == "" {
		fmt.Fprintln(os.Stderr, "usage: dlacep-train -data stream.csv -pattern 'PATTERN ...' [-net event|window] -out model.json")
		os.Exit(2)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	st, err := event.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	p, err := pattern.Parse(*patSrc)
	if err != nil {
		fatal(err)
	}
	pats := []*pattern.Pattern{p}
	w := int(p.Window.Size)
	cfg := core.Config{MarkSize: 2 * w, StepSize: w, Hidden: *hidden, Layers: *layers, Arch: *arch, Seed: *seed}
	windows := dataset.Windows(st, 2*w)
	trainWs, testWs := dataset.Split(windows, 0.7, *seed)
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		fatal(err)
	}
	opt := core.DefaultTrainOptions()
	opt.MaxEpochs = *epochs
	opt.Seed = *seed
	opt.OnEpoch = func(e int, loss float64) {
		fmt.Printf("epoch %3d  loss %.6f\n", e+1, loss)
	}

	outF, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer outF.Close()

	start := time.Now()
	switch *netKind {
	case "event":
		net, err := core.NewEventNetwork(st.Schema, pats, cfg)
		if err != nil {
			fatal(err)
		}
		res, err := net.Fit(trainWs, lab, opt)
		if err != nil {
			fatal(err)
		}
		if *calibrate > 0 {
			thr, err := net.Calibrate(trainWs, lab, *calibrate)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("calibrated threshold %.4f (target recall %.2f)\n", thr, *calibrate)
		}
		c, err := net.Evaluate(testWs, lab)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained %d epochs in %v (converged=%v)\ntest %v\n",
			res.Epochs, time.Since(start).Round(time.Second), res.Converged, c)
		if err := net.Save(outF, pats); err != nil {
			fatal(err)
		}
	case "window":
		net, err := core.NewWindowNetwork(st.Schema, pats, cfg)
		if err != nil {
			fatal(err)
		}
		res, err := net.Fit(trainWs, lab, opt)
		if err != nil {
			fatal(err)
		}
		if *calibrate > 0 {
			thr, err := net.Calibrate(trainWs, lab, *calibrate)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("calibrated threshold %.4f (target recall %.2f)\n", thr, *calibrate)
		}
		c, err := net.Evaluate(testWs, lab)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained %d epochs in %v (converged=%v)\ntest %v\n",
			res.Epochs, time.Since(start).Round(time.Second), res.Converged, c)
		if err := net.Save(outF, pats); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown net %q (event|window)\n", *netKind)
		os.Exit(2)
	}
	fmt.Printf("model written to %s\n", *out)
}
