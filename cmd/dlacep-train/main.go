// Command dlacep-train trains a DLACEP filter network on a historical
// stream and saves the model for later use by dlacep-serve.
//
// Usage:
//
//	dlacep-train -data stock.csv \
//	  -pattern 'PATTERN SEQ(S1 a, S2 b, S3 c) WHERE 0.5 * a.vol < c.vol WITHIN 150' \
//	  -net event -epochs 20 -out model.json
//
// With -registry the trained model is also registered (and promoted) as a
// new version in a lifecycle registry; -checkpoint-every N persists
// mid-training checkpoints so an interrupted run can continue with -resume,
// bit-identical to an uninterrupted one:
//
//	dlacep-train -data stock.csv -pattern '...' \
//	  -registry ./registry -family stock -checkpoint-every 5 [-resume]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/lifecycle"
	"dlacep/internal/pattern"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlacep-train:", err)
	os.Exit(1)
}

func main() {
	dataPath := flag.String("data", "", "training stream CSV (from dlacep-datagen or your own)")
	patSrc := flag.String("pattern", "", "pattern in the PATTERN ... WITHIN ... language")
	netKind := flag.String("net", "event", "filter variant: event or window")
	hidden := flag.Int("hidden", 75, "BiLSTM hidden size per direction")
	layers := flag.Int("layers", 3, "stacked BiLSTM layers (or TCN blocks)")
	arch := flag.String("arch", "bilstm", "filter body: bilstm or tcn")
	epochs := flag.Int("epochs", 30, "maximum training epochs")
	seed := flag.Int64("seed", 1, "initialization/shuffling seed")
	calibrate := flag.Float64("calibrate", 0, "optional target event/window recall for threshold calibration (0 = argmax decoding)")
	out := flag.String("out", "model.json", "model output path")
	registry := flag.String("registry", "", "lifecycle registry directory to register the model in")
	family := flag.String("family", "default", "model family within -registry")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint into -registry every N epochs (0 off, event nets only)")
	resume := flag.Bool("resume", false, "continue from the family's latest checkpoint in -registry")
	flag.Parse()

	if *dataPath == "" || *patSrc == "" {
		fmt.Fprintln(os.Stderr, "usage: dlacep-train -data stream.csv -pattern 'PATTERN ...' [-net event|window] -out model.json")
		os.Exit(2)
	}
	if (*checkpointEvery > 0 || *resume) && *registry == "" {
		fatal(fmt.Errorf("-checkpoint-every and -resume need -registry"))
	}
	if (*checkpointEvery > 0 || *resume) && *netKind != "event" {
		fatal(fmt.Errorf("checkpointed training supports -net event only"))
	}
	var reg *lifecycle.Registry
	if *registry != "" {
		var err error
		if reg, err = lifecycle.Open(*registry); err != nil {
			fatal(err)
		}
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	st, err := event.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	p, err := pattern.Parse(*patSrc)
	if err != nil {
		fatal(err)
	}
	pats := []*pattern.Pattern{p}
	w := int(p.Window.Size)
	cfg := core.Config{MarkSize: 2 * w, StepSize: w, Hidden: *hidden, Layers: *layers, Arch: *arch, Seed: *seed}
	windows := dataset.Windows(st, 2*w)
	trainWs, testWs := dataset.Split(windows, 0.7, *seed)
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		fatal(err)
	}
	opt := core.DefaultTrainOptions()
	opt.MaxEpochs = *epochs
	opt.Seed = *seed
	opt.OnEpoch = func(e int, loss float64) {
		fmt.Printf("epoch %3d  loss %.6f\n", e+1, loss)
	}

	// trainConfig is recorded in the registry manifest so a version can be
	// traced back to the run that produced it.
	trainConfig, _ := json.Marshal(map[string]any{
		"data": *dataPath, "pattern": *patSrc, "net": *netKind,
		"hidden": *hidden, "layers": *layers, "arch": *arch,
		"epochs": *epochs, "seed": *seed, "calibrate": *calibrate,
	})

	start := time.Now()
	var payload bytes.Buffer
	switch *netKind {
	case "event":
		net, err := core.NewEventNetwork(st.Schema, pats, cfg)
		if err != nil {
			fatal(err)
		}
		parent := 0
		if *resume {
			man, ckpt, ok, err := reg.LatestCheckpoint(*family)
			if err != nil {
				fatal(err)
			}
			if ok {
				filter, _, _, err := reg.LoadFilter(*family, man.Version)
				if err != nil {
					fatal(err)
				}
				resumed, isEvent := filter.(*core.EventNetwork)
				if !isEvent {
					fatal(fmt.Errorf("checkpoint v%d is not an event network", man.Version))
				}
				net = resumed
				parent = man.Parent
				lifecycle.Resume(ckpt, net, &opt)
				fmt.Printf("resuming from checkpoint v%d (epoch %d of %d)\n", man.Version, ckpt.Epoch, *epochs)
			} else {
				fmt.Println("no checkpoint found; training from scratch")
			}
		}
		if *checkpointEvery > 0 {
			opt.CheckpointEvery = *checkpointEvery
			lifecycle.AttachCheckpoints(reg, *family, net, pats, parent, &opt)
		}
		res, err := net.Fit(trainWs, lab, opt)
		if err != nil {
			fatal(err)
		}
		if *calibrate > 0 {
			thr, err := net.Calibrate(trainWs, lab, *calibrate)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("calibrated threshold %.4f (target recall %.2f)\n", thr, *calibrate)
		}
		c, err := net.Evaluate(testWs, lab)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained %d epochs in %v (converged=%v)\ntest %v\n",
			res.Epochs, time.Since(start).Round(time.Second), res.Converged, c)
		if err := net.Save(&payload, pats); err != nil {
			fatal(err)
		}
	case "window":
		net, err := core.NewWindowNetwork(st.Schema, pats, cfg)
		if err != nil {
			fatal(err)
		}
		res, err := net.Fit(trainWs, lab, opt)
		if err != nil {
			fatal(err)
		}
		if *calibrate > 0 {
			thr, err := net.Calibrate(trainWs, lab, *calibrate)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("calibrated threshold %.4f (target recall %.2f)\n", thr, *calibrate)
		}
		c, err := net.Evaluate(testWs, lab)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained %d epochs in %v (converged=%v)\ntest %v\n",
			res.Epochs, time.Since(start).Round(time.Second), res.Converged, c)
		if err := net.Save(&payload, pats); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown net %q (event|window)\n", *netKind)
		os.Exit(2)
	}
	if err := os.WriteFile(*out, payload.Bytes(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("model written to %s\n", *out)
	if reg != nil {
		man, err := reg.Put(*family, bytes.NewReader(payload.Bytes()),
			lifecycle.PutMeta{Note: "dlacep-train", TrainConfig: trainConfig})
		if err != nil {
			fatal(err)
		}
		if err := reg.Promote(*family, man.Version); err != nil {
			fatal(err)
		}
		fmt.Printf("registered and promoted %s v%d (sha256 %.12s…)\n", *family, man.Version, man.SHA256)
	}
}
