package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Variant aggregates the repeated runs of one benchmark variant
// (BenchmarkX/naive or BenchmarkX/fast). Repeated -count runs are collapsed
// to the median, which is robust to the occasional slow run on shared
// hardware; allocation stats are exact and identical across runs, so the
// median is the value itself.
type Variant struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Runs        int     `json:"runs"`
	// Extra holds custom b.ReportMetric units (events/sec, p50_ns, ...),
	// each collapsed to its median across runs.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Benchmark is one naive/fast pair (either side may be absent for plain
// benchmarks). Speedup is naive ns/op over fast ns/op — the number the
// ≥2× fast-path criterion is checked against.
type Benchmark struct {
	Naive   *Variant `json:"naive,omitempty"`
	Fast    *Variant `json:"fast,omitempty"`
	Speedup float64  `json:"speedup,omitempty"`
}

// Report is the BENCH_nn.json document.
type Report struct {
	GeneratedBy string                `json:"generated_by"`
	GoOS        string                `json:"go_os"`
	GoArch      string                `json:"go_arch"`
	Benchmarks  map[string]*Benchmark `json:"benchmarks"`
}

type sample struct {
	ns, bytes, allocs float64
	extra             map[string]float64
}

// Parse reads `go test -bench` output and aggregates it into a Report.
// Unrecognized lines (test chatter, pass/fail summaries) are skipped.
func Parse(r io.Reader) (*Report, error) {
	samples := map[string]map[string][]sample{} // base -> variant -> runs
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-P  N  <v> ns/op  [<v> B/op  <v> allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 { // strip -GOMAXPROCS
			name = name[:i]
		}
		base, variant := name, ""
		if i := strings.LastIndex(name, "/"); i > 0 {
			base, variant = name[:i], name[i+1:]
		}
		var s sample
		var err error
		if s.ns, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "B/op":
				s.bytes = v
			case "allocs/op":
				s.allocs = v
			default: // custom b.ReportMetric unit
				if s.extra == nil {
					s.extra = map[string]float64{}
				}
				s.extra[unit] = v
			}
		}
		if samples[base] == nil {
			samples[base] = map[string][]sample{}
		}
		samples[base][variant] = append(samples[base][variant], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	report := &Report{
		GeneratedBy: "dlacep-benchjson",
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		Benchmarks:  map[string]*Benchmark{},
	}
	for base, variants := range samples {
		b := &Benchmark{}
		for variant, runs := range variants {
			v := aggregate(runs)
			switch variant {
			case "naive":
				b.Naive = v
			case "fast":
				b.Fast = v
			case "":
				b.Fast = v // plain benchmark: record it as the measured path
			default:
				// sub-benchmark outside the naive/fast convention gets its
				// own entry so nothing is silently dropped
				report.Benchmarks[base+"/"+variant] = &Benchmark{Fast: v}
			}
		}
		if b.Naive != nil && b.Fast != nil && b.Fast.NsPerOp > 0 {
			b.Speedup = round2(b.Naive.NsPerOp / b.Fast.NsPerOp)
		}
		if b.Naive != nil || b.Fast != nil {
			report.Benchmarks[base] = b
		}
	}
	return report, nil
}

func aggregate(runs []sample) *Variant {
	ns := make([]float64, len(runs))
	for i, s := range runs {
		ns[i] = s.ns
	}
	sort.Float64s(ns)
	v := &Variant{
		NsPerOp:     median(ns),
		BytesPerOp:  runs[0].bytes,
		AllocsPerOp: runs[0].allocs,
		Runs:        len(runs),
	}
	for unit := range runs[0].extra {
		vals := make([]float64, 0, len(runs))
		for _, s := range runs {
			if x, ok := s.extra[unit]; ok {
				vals = append(vals, x)
			}
		}
		sort.Float64s(vals)
		if v.Extra == nil {
			v.Extra = map[string]float64{}
		}
		v.Extra[unit] = median(vals)
	}
	return v
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func round2(x float64) float64 {
	return float64(int(x*100+0.5)) / 100
}

// AllocatingFast lists benchmarks matching re whose fast variant reports a
// nonzero allocation count — the condition the CI bench-smoke gate fails on.
func (r *Report) AllocatingFast(re *regexp.Regexp) []string {
	var bad []string
	for name, b := range r.Benchmarks {
		if re.MatchString(name) && b.Fast != nil && b.Fast.AllocsPerOp > 0 {
			bad = append(bad, name)
		}
	}
	sort.Strings(bad)
	return bad
}

// JSON renders the report with stable key order (encoding/json sorts map
// keys), suitable for committing as a baseline.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
