package main

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

const benchOutput = `
goos: linux
goarch: amd64
pkg: dlacep/internal/nn
BenchmarkLSTMInfer/naive-4         	    1640	   1903891 ns/op	  303872 B/op	     263 allocs/op
BenchmarkLSTMInfer/naive-4         	    1420	   1591495 ns/op	  303872 B/op	     263 allocs/op
BenchmarkLSTMInfer/naive-4         	    1500	   1700000 ns/op	  303872 B/op	     263 allocs/op
BenchmarkLSTMInfer/fast-4          	    2602	    918242 ns/op	     147 B/op	       0 allocs/op
BenchmarkLSTMInfer/fast-4          	    2670	   1008399 ns/op	     144 B/op	       0 allocs/op
BenchmarkLSTMInfer/fast-4          	    2670	    850000 ns/op	     144 B/op	       0 allocs/op
BenchmarkFilterWindow/naive-4      	     574	   4202644 ns/op	  530004 B/op	     637 allocs/op
BenchmarkFilterWindow/fast-4       	    1279	   1908395 ns/op	    6864 B/op	     144 allocs/op
BenchmarkPlain-4                   	   10000	      1234 ns/op
PASS
ok  	dlacep/internal/nn	35.029s
`

func parseFixture(t *testing.T) *Report {
	t.Helper()
	r, err := Parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseAggregatesByMedian(t *testing.T) {
	r := parseFixture(t)
	b := r.Benchmarks["BenchmarkLSTMInfer"]
	if b == nil || b.Naive == nil || b.Fast == nil {
		t.Fatalf("BenchmarkLSTMInfer pair missing: %+v", b)
	}
	if b.Naive.NsPerOp != 1700000 { // median of {1591495, 1700000, 1903891}
		t.Errorf("naive median = %v, want 1700000", b.Naive.NsPerOp)
	}
	if b.Fast.NsPerOp != 918242 { // median of {850000, 918242, 1008399}
		t.Errorf("fast median = %v, want 918242", b.Fast.NsPerOp)
	}
	if b.Naive.Runs != 3 || b.Fast.Runs != 3 {
		t.Errorf("runs = %d/%d, want 3/3", b.Naive.Runs, b.Fast.Runs)
	}
	want := 1.85 // 1700000 / 918242 rounded to 2 places
	if b.Speedup != want {
		t.Errorf("speedup = %v, want %v", b.Speedup, want)
	}
}

func TestParseSingleRunPair(t *testing.T) {
	r := parseFixture(t)
	b := r.Benchmarks["BenchmarkFilterWindow"]
	if b == nil || b.Naive == nil || b.Fast == nil {
		t.Fatalf("BenchmarkFilterWindow pair missing: %+v", b)
	}
	if b.Speedup != 2.2 { // 4202644 / 1908395 = 2.202...
		t.Errorf("speedup = %v, want 2.2", b.Speedup)
	}
	if b.Fast.AllocsPerOp != 144 || b.Fast.BytesPerOp != 6864 {
		t.Errorf("fast alloc stats = %v B / %v allocs, want 6864/144",
			b.Fast.BytesPerOp, b.Fast.AllocsPerOp)
	}
}

func TestParsePlainBenchmark(t *testing.T) {
	r := parseFixture(t)
	b := r.Benchmarks["BenchmarkPlain"]
	if b == nil || b.Fast == nil {
		t.Fatalf("plain benchmark missing: %+v", b)
	}
	if b.Fast.NsPerOp != 1234 || b.Speedup != 0 {
		t.Errorf("plain = %v ns/op speedup %v, want 1234 ns/op speedup 0", b.Fast.NsPerOp, b.Speedup)
	}
}

func TestAllocatingFastScopedByPattern(t *testing.T) {
	r := parseFixture(t)
	// The Infer benchmarks are allocation-free, so the CI gate passes…
	if bad := r.AllocatingFast(regexp.MustCompile("Infer")); len(bad) != 0 {
		t.Errorf("Infer gate flagged %v, want none", bad)
	}
	// …while a pattern covering the core Mark benchmark (which legitimately
	// allocates its outputs) would flag it.
	if bad := r.AllocatingFast(regexp.MustCompile(".")); len(bad) != 1 || bad[0] != "BenchmarkFilterWindow" {
		t.Errorf("catch-all gate flagged %v, want [BenchmarkFilterWindow]", bad)
	}
}

func TestJSONRoundTrips(t *testing.T) {
	r := parseFixture(t)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(back.Benchmarks) != len(r.Benchmarks) {
		t.Errorf("round-trip lost benchmarks: %d vs %d", len(back.Benchmarks), len(r.Benchmarks))
	}
	if back.GeneratedBy != "dlacep-benchjson" {
		t.Errorf("generated_by = %q", back.GeneratedBy)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	r, err := Parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 0 {
		t.Errorf("expected no benchmarks, got %d", len(r.Benchmarks))
	}
}
