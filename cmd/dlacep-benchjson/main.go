// Command dlacep-benchjson converts `go test -bench` output into the
// repository's benchmark-baseline JSON (BENCH_nn.json). It groups
// naive/fast benchmark variants, aggregates repeated -count runs by
// median, computes the fast-path speedup for every pair, and can gate CI:
//
//   - -fail-on-allocs <regexp> errors if the fast variant of any matching
//     benchmark allocates. Network.Infer promises zero steady-state
//     allocations per window, so CI points this at the nn-level
//     benchmarks; the core-level Mark benchmark is excluded because its
//     fast path legitimately allocates the returned marks and the CRF
//     tables;
//   - -min-speedup (with -require) errors if a named pair's naive/fast
//     ratio falls below a floor — used when refreshing the committed
//     baseline, not in CI smoke runs, whose -benchtime=1x timings are
//     meaningless.
//
// Usage:
//
//	go test ./internal/nn/ ./internal/core/ -run '^$' -bench 'Infer|FilterWindow' | dlacep-benchjson -out BENCH_nn.json
//	dlacep-benchjson -in bench.txt -out BENCH_nn.json -fail-on-allocs 'Infer'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlacep-benchjson:", err)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	failOnAllocs := flag.String("fail-on-allocs", "", "regexp of benchmarks whose fast variant must not allocate")
	minSpeedup := flag.Float64("min-speedup", 0, "minimum naive/fast ratio for the -require pair")
	require := flag.String("require", "", "benchmark name the -min-speedup floor applies to")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	report, err := Parse(src)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	data, err := report.JSON()
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(data))
	} else if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	if *failOnAllocs != "" {
		re, err := regexp.Compile(*failOnAllocs)
		if err != nil {
			fatal(fmt.Errorf("bad -fail-on-allocs pattern: %w", err))
		}
		if bad := report.AllocatingFast(re); len(bad) > 0 {
			fatal(fmt.Errorf("fast-path benchmarks allocate in steady state: %v", bad))
		}
	}
	if *minSpeedup > 0 {
		if *require == "" {
			fatal(fmt.Errorf("-min-speedup needs -require <benchmark name>"))
		}
		b, ok := report.Benchmarks[*require]
		if !ok || b.Speedup == 0 {
			fatal(fmt.Errorf("benchmark %q has no naive/fast pair in input", *require))
		}
		if b.Speedup < *minSpeedup {
			fatal(fmt.Errorf("%s speedup %.2fx below required %.2fx", *require, b.Speedup, *minSpeedup))
		}
	}
}
