package dlacep

// Benchmarks regenerating the paper's tables and figures at micro scale:
// one benchmark per table/figure. Each benchmark prepares its workload and
// (where needed) a trained or oracle filter outside the timer, then times
// the evaluation phase; figure-level metrics (throughput gain, recall) are
// attached via b.ReportMetric. For the full figure sweeps with trained
// networks, use `go run ./cmd/dlacep-bench -fig N` (see EXPERIMENTS.md).

import (
	"fmt"
	"sync"
	"testing"

	"dlacep/internal/cep"
	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/lazy"
	"dlacep/internal/mcep"
	"dlacep/internal/metrics"
	"dlacep/internal/pattern"
	"dlacep/internal/queries"
	"dlacep/internal/shed"
	"dlacep/internal/zstream"
)

const benchW = 18

// benchEnv caches a generated stock stream across benchmarks.
var benchEnv struct {
	once  sync.Once
	stock *event.Stream
	syn   *event.Stream
}

func benchStreams() (*event.Stream, *event.Stream) {
	benchEnv.once.Do(func() {
		benchEnv.stock = dataset.Stock(dataset.StockConfig{
			Events: 12000, Tickers: 150, ZipfS: 1.1, Sigma: 0.3, Seed: 5,
		})
		benchEnv.syn = dataset.Synthetic(12000, 15, 5)
	})
	return benchEnv.stock, benchEnv.syn
}

// benchPipeline times pipeline evaluation with the given filter against the
// ECEP baseline on the stream's tail, reporting gain and recall.
func benchPipeline(b *testing.B, pats []*pattern.Pattern, st *event.Stream, filter core.EventFilter) {
	b.Helper()
	w := int(pats[0].Window.Size)
	cfg := core.Config{MarkSize: 2 * w, StepSize: w, Hidden: 8, Layers: 1, Seed: 1}
	eval := st.Slice(st.Len()*7/10, st.Len())
	ecep, err := core.RunECEP(st.Schema, pats, eval)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := core.NewPipeline(st.Schema, pats, cfg, filter)
	if err != nil {
		b.Fatal(err)
	}
	// Warmup: populates the oracle's label cache so its Mark cost models a
	// free perfect filter rather than re-running exact CEP.
	if _, err := pl.Run(eval); err != nil {
		b.Fatal(err)
	}
	var res *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = pl.Run(eval)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cmp := core.Compare(res, ecep)
	b.ReportMetric(cmp.Gain, "gain")
	b.ReportMetric(cmp.Recall, "recall")
	b.ReportMetric(res.FilterRatio(), "filter_ratio")
	b.ReportMetric(float64(eval.Len())/res.Elapsed().Seconds(), "events/s")
}

func oracleFor(b *testing.B, pats []*pattern.Pattern, schema *event.Schema) core.OracleFilter {
	b.Helper()
	lab, err := label.New(schema, pats...)
	if err != nil {
		b.Fatal(err)
	}
	return core.OracleFilter{L: lab}
}

// --- Tables 1 and 2: template instantiation and engine compilation --------

func BenchmarkTable1TemplateCompile(b *testing.B) {
	schema := dataset.VolSchema()
	for i := 0; i < b.N; i++ {
		for _, p := range []*pattern.Pattern{
			queries.QA1(benchW, 4, 7, []int{1, 2, 3}, 0.75, 1.3),
			queries.QA2(benchW, 10),
			queries.QA3(benchW, 4, 10, 4, []int{1, 2}, 1, 3, 0.75, 1.3, 0.5),
			queries.QA4(benchW, 4, 10, []int{1, 2}, 1, 3, 0.8, 1.2, 0.9, 1.1),
			queries.QA5(benchW, 2, 0.5, 1.5, 10, 3),
			queries.QA6(benchW, 3, 0.5, 1.5, 10),
			queries.QA7(benchW, 2, 0.5, 1.5, 10, 3),
			queries.QA8(benchW, 2, 0.5, 1.5, 10, 3),
			queries.QA9(benchW, 3, 0.5, 1.5, 0.6, 1.4, 10),
			queries.QA10(benchW, 3, 0.5, 1.5, 5),
			queries.QA11(benchW, false, 0.5, 1.5, 5),
			queries.QA12(benchW, 0.5, 1.5, 0.6, 1.4, 5),
		} {
			if _, err := cep.New(p, schema); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable2TemplateCompile(b *testing.B) {
	schema := dataset.VolSchema()
	for i := 0; i < b.N; i++ {
		for _, p := range []*pattern.Pattern{queries.QB1(benchW), queries.QB2(benchW), queries.QB3(benchW)} {
			if _, err := cep.New(p, schema); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 8: partial/full match regimes ----------------------------------

func BenchmarkFigure8aFewPartialMatches(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA1(benchW, 4, 3, []int{1, 2, 3}, 0.75, 1.3)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure8aManyPartialMatches(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA1(benchW, 4, 14, []int{1, 2, 3}, 0.8, 1.2)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure8aPartialsCompleteToFull(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA2(benchW, 7)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure8bPartialToFullRatio(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA4(benchW, 4, 14, []int{1, 2}, 1, 3, 0.85, 1.15, 0.9, 1.1)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure8cFullMatchSweep(b *testing.B) {
	st, _ := benchStreams()
	for _, a := range []float64{0.24, 0.76} {
		b.Run(fmt.Sprintf("alpha=%.2f", a), func(b *testing.B) {
			pats := []*pattern.Pattern{queries.QA1(benchW, 4, 14, []int{1, 2, 3}, a, 2-a)}
			benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
		})
	}
}

// --- Figure 9: pattern operators -------------------------------------------

func BenchmarkFigure9aKleene(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA5(2*benchW, 1, 0.6, 1.5, 10, 3)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure9bKleeneNested(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA6(benchW, 3, 0.75, 1.3, 10)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure9cNegation(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA7(benchW, 2, 0.75, 1.3, 10, 3)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure9dNegationNested(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA8(benchW, 2, 0.75, 1.3, 10, 3)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure9eDisjunction(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA9(benchW, 3, 0.75, 1.3, 0.7, 1.35, 10)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure9fDisjunctionMany(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA10(benchW, 3, 0.75, 1.3, 5)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

func BenchmarkFigure9gSeparateVsDisj(b *testing.B) {
	st, _ := benchStreams()
	p1 := queries.QA9(benchW, 3, 0.75, 1.3, 0.7, 1.35, 10)
	p2 := queries.QA5(benchW, 1, 0.6, 1.5, 10, 3)
	b.Run("separate", func(b *testing.B) {
		pats := []*pattern.Pattern{p1, p2}
		benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
	})
	b.Run("combined", func(b *testing.B) {
		pats := []*pattern.Pattern{pattern.Combine("both", p1, p2)}
		benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
	})
}

// --- Figure 10: qualitative miss analysis ----------------------------------

func BenchmarkFigure10MissAnalysis(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA10(benchW, 3, 0.7, 1.35, 5)}
	eval := st.Slice(st.Len()*7/10, st.Len())
	ecep, err := core.RunECEP(st.Schema, pats, eval)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// the analysis itself: per-match attribute variance
		for _, m := range ecep.Matches {
			var sum, sumSq float64
			for _, e := range m.Events {
				sum += e.Attrs[0]
				sumSq += e.Attrs[0] * e.Attrs[0]
			}
			n := float64(len(m.Events))
			_ = sumSq/n - (sum/n)*(sum/n)
		}
	}
}

// --- Figure 11: training budget --------------------------------------------

func BenchmarkFigure11TrainingEpoch(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA9(benchW, 3, 0.75, 1.3, 0.7, 1.35, 10)}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{MarkSize: 2 * benchW, StepSize: benchW, Hidden: 8, Layers: 1, Seed: 1}
	trainWs := dataset.Windows(st.Slice(0, st.Len()*7/10), 2*benchW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := core.NewEventNetwork(st.Schema, pats, cfg)
		if err != nil {
			b.Fatal(err)
		}
		opt := core.DefaultTrainOptions()
		opt.MaxEpochs = 1
		opt.NoConvergence = true
		if _, err := net.Fit(trainWs[:64], lab, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12: ECEP optimization baselines ---------------------------------

func BenchmarkFigure12NFA(b *testing.B) {
	st, _ := benchStreams()
	p := queries.QA11(benchW, false, 0.75, 1.3, 5)
	eval := st.Slice(st.Len()*7/10, st.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cep.Run(p, eval); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12ZStream(b *testing.B) {
	st, _ := benchStreams()
	for _, cse := range []struct {
		name string
		pat  *pattern.Pattern
	}{
		{"SEQ", queries.QA11(benchW, false, 0.75, 1.3, 5)},
		{"CONJ", queries.QA11(benchW, true, 0.8, 1.25, 5)},
		{"DISJ", queries.QA12(benchW, 0.75, 1.3, 0.7, 1.35, 5)},
	} {
		b.Run(cse.name, func(b *testing.B) {
			stats := zstream.EstimateStatistics(cse.pat, st, 500, 1)
			eval := st.Slice(st.Len()*7/10, st.Len())
			want, _, err := cep.Run(cse.pat, eval)
			if err != nil {
				b.Fatal(err)
			}
			var got []*cep.Match
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err = zstream.Run(cse.pat, eval, stats)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(metrics.MatchSets(cep.Keys(got), cep.Keys(want)).Recall(), "recall")
		})
	}
}

func BenchmarkFigure12Lazy(b *testing.B) {
	st, _ := benchStreams()
	for _, cse := range []struct {
		name string
		pat  *pattern.Pattern
	}{
		{"SEQ", queries.QA11(benchW, false, 0.75, 1.3, 5)},
		{"CONJ", queries.QA11(benchW, true, 0.8, 1.25, 5)},
		{"DISJ", queries.QA12(benchW, 0.75, 1.3, 0.7, 1.35, 5)},
	} {
		b.Run(cse.name, func(b *testing.B) {
			eval := st.Slice(st.Len()*7/10, st.Len())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := lazy.Run(cse.pat, eval); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure12DLACEP(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA11(benchW, false, 0.75, 1.3, 5)}
	benchPipeline(b, pats, st, oracleFor(b, pats, st.Schema))
}

// --- Figure 13: window and pattern size, layer depth ------------------------

func BenchmarkFigure13abWindowPatternSize(b *testing.B) {
	_, syn := benchStreams()
	for _, length := range []int{4, 6} {
		for _, w := range []int{12, 24} {
			b.Run(fmt.Sprintf("len=%d/W=%d", length, w), func(b *testing.B) {
				pats := []*pattern.Pattern{queries.ByLength(length, w)}
				benchPipeline(b, pats, syn, oracleFor(b, pats, syn.Schema))
			})
		}
	}
}

func BenchmarkFigure13cdLayers(b *testing.B) {
	_, syn := benchStreams()
	pats := []*pattern.Pattern{queries.QB1(24)}
	lab, err := label.New(syn.Schema, pats...)
	if err != nil {
		b.Fatal(err)
	}
	for _, layers := range []int{1, 3} {
		b.Run(fmt.Sprintf("layers=%d", layers), func(b *testing.B) {
			cfg := core.Config{MarkSize: 48, StepSize: 24, Hidden: 8, Layers: layers, Seed: 1}
			net, err := core.NewEventNetwork(syn.Schema, pats, cfg)
			if err != nil {
				b.Fatal(err)
			}
			opt := core.DefaultTrainOptions()
			opt.MaxEpochs = 1
			opt.NoConvergence = true
			trainWs := dataset.Windows(syn.Slice(0, 4800), 48)
			if _, err := net.Fit(trainWs, lab, opt); err != nil {
				b.Fatal(err)
			}
			windows := dataset.Windows(syn.Slice(4800, 9600), 48)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, w := range windows {
					net.Mark(w)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(windows)*48)*float64(b.N)/b.Elapsed().Seconds(), "marked_events/s")
		})
	}
}

// --- Figure 14: simulated time-based windows --------------------------------

func BenchmarkFigure14TimeBased(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA5(benchW, 1, 0.6, 1.5, 10, 3)}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		b.Fatal(err)
	}
	mw := 2 * benchW
	cfg := core.Config{MarkSize: mw, StepSize: mw, Hidden: 8, Layers: 1, Seed: 1}
	eval := st.Slice(st.Len()*7/10, st.Len())
	windows := dataset.TimeWindows(eval, mw, 3)
	pl, err := core.NewPipeline(st.Schema, pats, cfg, core.OracleFilter{L: lab})
	if err != nil {
		b.Fatal(err)
	}
	ecep, err := core.RunECEP(st.Schema, pats, eval)
	if err != nil {
		b.Fatal(err)
	}
	var res *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = pl.RunWindows(windows)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cmp := core.Compare(res, ecep)
	b.ReportMetric(cmp.Gain, "gain")
	b.ReportMetric(cmp.Recall, "recall")
}

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkNFAEngineThroughput(b *testing.B) {
	st, _ := benchStreams()
	p := queries.QA1(benchW, 4, 14, []int{1, 2, 3}, 0.8, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cep.Run(p, st); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(st.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkBiLSTMInference(b *testing.B) {
	_, syn := benchStreams()
	pats := []*pattern.Pattern{queries.QB3(benchW)}
	cfg := core.Config{MarkSize: 2 * benchW, StepSize: benchW, Hidden: 16, Layers: 1, Seed: 1}
	net, err := core.NewEventNetwork(syn.Schema, pats, cfg)
	if err != nil {
		b.Fatal(err)
	}
	window := syn.Events[:2*benchW]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Mark(window)
	}
	b.StopTimer()
	b.ReportMetric(float64(2*benchW)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkLabeling(b *testing.B) {
	st, _ := benchStreams()
	p := queries.QA1(benchW, 4, 14, []int{1, 2, 3}, 0.8, 1.2)
	windows := dataset.Windows(st.Slice(0, 3600), 2*benchW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab, err := label.New(st.Schema, p) // fresh labeler: no cache hits
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range windows {
			if _, err := lab.EventLabels(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- extension benchmarks: selection strategies, shedding, serving ----------

func BenchmarkSelectionStrategies(b *testing.B) {
	st, _ := benchStreams()
	src := queries.QA1(benchW, 4, 14, []int{1, 2, 3}, 0.8, 1.2)
	for _, strat := range []pattern.SelectionStrategy{
		pattern.SkipTillAnyMatch, pattern.SkipTillNextMatch, pattern.StrictContiguity,
	} {
		b.Run(strat.String(), func(b *testing.B) {
			p := *src
			p.Strategy = strat
			eval := st.Slice(st.Len()*7/10, st.Len())
			var stats cep.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = cep.Run(&p, eval)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.Instances), "instances")
		})
	}
}

func BenchmarkLoadShedding(b *testing.B) {
	st, _ := benchStreams()
	p := queries.QA1(benchW, 3, 14, []int{1, 2}, 0.7, 1.4)
	lab, err := label.New(st.Schema, p)
	if err != nil {
		b.Fatal(err)
	}
	util, rate, err := shed.TypeUtility(lab, dataset.Windows(st.Slice(0, 3600), 2*benchW))
	if err != nil {
		b.Fatal(err)
	}
	eval := st.Slice(st.Len()*7/10, st.Len())
	exact, err := shed.Run(p, eval, shed.NewRandom(0, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, mk := range []struct {
		name string
		mk   func() shed.Shedder
	}{
		{"utility", func() shed.Shedder { s, _ := shed.NewUtility(0.5, util, rate, 1); return s }},
		{"random", func() shed.Shedder { return shed.NewRandom(0.5, 1) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			var res *shed.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = shed.Run(p, eval, mk.mk())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(metrics.MatchSets(res.Matches, exact.Matches).Recall(), "recall")
		})
	}
}

func BenchmarkIncrementalProcessor(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{queries.QA1(benchW, 3, 14, []int{1, 2}, 0.7, 1.4)}
	lab, err := label.New(st.Schema, pats...)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{MarkSize: 2 * benchW, StepSize: benchW, Hidden: 8, Layers: 1, Seed: 1}
	pl, err := core.NewPipeline(st.Schema, pats, cfg, core.OracleFilter{L: lab})
	if err != nil {
		b.Fatal(err)
	}
	eval := st.Slice(st.Len()*7/10, st.Len())
	if _, err := pl.Run(eval); err != nil { // warm label memo
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc, err := pl.NewProcessor()
		if err != nil {
			b.Fatal(err)
		}
		for j := range eval.Events {
			if _, err := proc.Push(eval.Events[j]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := proc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(eval.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkPipelineParallel sweeps the pipeline worker bound on a
// fixed-seed multi-pattern workload with a real BiLSTM filter, so both
// parallel axes (window marking, per-pattern engines) are exercised. On
// multi-core hardware P>1 shows the speedup; the emitted match-key set is
// identical at every level (see TestParallelRunEquivalence).
func BenchmarkPipelineParallel(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{
		queries.QA1(benchW, 4, 7, []int{1, 2, 3}, 0.8, 1.2),
		queries.QA1(benchW, 4, 7, []int{1, 2}, 0.7, 1.3),
		queries.QA2(benchW, 7),
	}
	cfg := core.Config{MarkSize: 2 * benchW, StepSize: benchW, Hidden: 16, Layers: 1, Seed: 1}
	net, err := core.NewEventNetwork(st.Schema, pats, cfg)
	if err != nil {
		b.Fatal(err)
	}
	eval := st.Slice(st.Len()*85/100, st.Len())
	net.Emb.Fit(eval)
	net.Threshold = 0.45 // untrained net: keep enough events to load the engines
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", par), func(b *testing.B) {
			cfg.Parallelism = par
			pl, err := core.NewPipeline(st.Schema, pats, cfg, net)
			if err != nil {
				b.Fatal(err)
			}
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = pl.Run(eval)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(eval.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(len(res.Keys)), "matches")
		})
	}
}

func BenchmarkMultiPatternShared(b *testing.B) {
	st, _ := benchStreams()
	pats := []*pattern.Pattern{
		queries.QA1(benchW, 4, 14, []int{1, 2, 3}, 0.8, 1.2),
		queries.QA1(benchW, 4, 14, []int{1, 2}, 0.7, 1.3),
		queries.QA2(benchW, 14),
	}
	eval := st.Slice(st.Len()*7/10, st.Len())
	b.Run("shared", func(b *testing.B) {
		var stats mcep.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, stats, err = mcep.Run(pats, eval)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Instances), "instances")
	})
	b.Run("separate", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			total = 0
			for _, p := range pats {
				_, s, err := cep.Run(p, eval)
				if err != nil {
					b.Fatal(err)
				}
				total += s.Instances
			}
		}
		b.ReportMetric(float64(total), "instances")
	})
}
