// Package dlacep is a deep-learning based framework for approximate complex
// event processing, reproducing Amir, Kolchinsky & Schuster, "DLACEP: A
// Deep-Learning Based Framework for Approximate Complex Event Processing"
// (SIGMOD 2022).
//
// DLACEP couples a neural filter with an exact CEP engine: a stacked-BiLSTM
// network marks the stream events likely to participate in pattern matches,
// and only marked events are relayed to the engine for match assembly. On
// streams with many partial matches this trades a small fraction of the
// matches for order-of-magnitude throughput gains.
//
// This root package is the public API; implementation lives in internal/*.
// A minimal session:
//
//	p := dlacep.MustParse("PATTERN SEQ(A a, B b, C c) WHERE c.vol > a.vol WITHIN 150")
//	lab, _ := dlacep.NewLabeler(stream.Schema, p)
//	net, _ := dlacep.NewEventNetwork(stream.Schema, []*dlacep.Pattern{p}, dlacep.DefaultConfig(150))
//	net.Fit(dlacep.SampleWindows(history, 300), lab, dlacep.DefaultTrainOptions())
//	pipe, _ := dlacep.NewPipeline(stream.Schema, []*dlacep.Pattern{p}, net.Cfg, net)
//	res, _ := pipe.Run(stream)
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduced evaluation.
package dlacep

import (
	"dlacep/internal/cep"
	"dlacep/internal/core"
	"dlacep/internal/dataset"
	"dlacep/internal/event"
	"dlacep/internal/label"
	"dlacep/internal/mcep"
	"dlacep/internal/pattern"
)

// Event model.
type (
	// Event is a primitive stream event (type, attributes, timestamp, ID).
	Event = event.Event
	// Schema maps attribute names to positions in Event.Attrs.
	Schema = event.Schema
	// Stream is a schema plus an ordered event sequence.
	Stream = event.Stream
)

// NewSchema builds an attribute schema.
var NewSchema = event.NewSchema

// NewStream builds a stream over a schema, assigning sequential IDs.
var NewStream = event.NewStream

// Pattern model.
type (
	// Pattern is a monitored CEP pattern: operator tree, conditions, window.
	Pattern = pattern.Pattern
	// Condition is one WHERE-clause predicate.
	Condition = pattern.Condition
	// Window is the WITHIN clause.
	Window = pattern.Window
)

// Pattern constructors and the textual query language.
var (
	// Parse compiles "PATTERN SEQ(A a, B b) WHERE ... WITHIN W" queries.
	Parse = pattern.Parse
	// MustParse is Parse that panics on error.
	MustParse = pattern.MustParse
	// NewPattern assembles and validates a pattern programmatically.
	NewPattern = pattern.New
	// Seq, Conj, Disj, KC, Neg, Prim build operator trees.
	Seq  = pattern.Seq
	Conj = pattern.Conj
	Disj = pattern.Disj
	KC   = pattern.KC
	Neg  = pattern.Neg
	Prim = pattern.Prim
	// CountWindow and TimeWindow build WITHIN clauses.
	CountWindow = pattern.Count
	TimeWindow  = pattern.Time
	// Combine builds the disjunction of independently authored patterns.
	Combine = pattern.Combine
)

// Exact CEP engine (the ECEP baseline and the pipeline's extractor).
type (
	// Engine is the streaming NFA evaluator under skip-till-any-match.
	Engine = cep.Engine
	// Match is one full pattern match.
	Match = cep.Match
	// EngineStats counts events, partial-match instances, and matches.
	EngineStats = cep.Stats
)

// NewEngine compiles a pattern into a streaming engine.
var NewEngine = cep.New

// RunExact evaluates a whole stream exactly and returns deduplicated
// matches with statistics.
var RunExact = cep.Run

// DLACEP pipeline.
type (
	// Config holds MarkSize/StepSize and network shape (Section 4.2-4.3).
	Config = core.Config
	// EventNetwork is the per-event BiLSTM+Bi-CRF filter.
	EventNetwork = core.EventNetwork
	// WindowNetwork is the per-window BiLSTM classifier filter.
	WindowNetwork = core.WindowNetwork
	// EventFilter marks events to relay; WindowFilter classifies windows.
	EventFilter = core.EventFilter
	// WindowFilter classifies whole windows as applicable.
	WindowFilter = core.WindowFilter
	// WindowToEvent adapts a WindowFilter to the EventFilter interface.
	WindowToEvent = core.WindowToEvent
	// Pipeline is assembler -> filter -> dedup relay -> CEP extractor.
	Pipeline = core.Pipeline
	// Result is one pipeline run's matches and cost decomposition.
	Result = core.Result
	// Comparison scores an approximate run against the exact baseline.
	Comparison = core.Comparison
	// TrainOptions configures filter training.
	TrainOptions = core.TrainOptions
	// Labeler computes ground-truth labels by running exact CEP.
	Labeler = label.Labeler
)

var (
	// DefaultConfig returns the paper's pipeline configuration for a window.
	DefaultConfig = core.DefaultConfig
	// NewEventNetwork and NewWindowNetwork build untrained filters.
	NewEventNetwork  = core.NewEventNetwork
	NewWindowNetwork = core.NewWindowNetwork
	// NewPipeline wires a filter into the DLACEP pipeline.
	NewPipeline = core.NewPipeline
	// RunECEP measures the exact baseline on a stream; RunECEPParallel
	// fans the patterns out over a bounded worker pool.
	RunECEP         = core.RunECEP
	RunECEPParallel = core.RunECEPParallel
	// Compare computes recall/F1/gain of an approximate run vs exact.
	Compare = core.Compare
	// DefaultTrainOptions returns a CPU-scale training schedule.
	DefaultTrainOptions = core.DefaultTrainOptions
	// LoadModel reads a filter saved with (*EventNetwork).Save or
	// (*WindowNetwork).Save.
	LoadModel = core.LoadModel
	// NewLabeler builds a ground-truth labeler over monitored patterns.
	NewLabeler = label.New
)

// SampleWindows cuts a stream into consecutive window samples of the given
// size (use 2·W for training data, per Section 4.3).
var SampleWindows = dataset.Windows

// SplitWindows shuffles and splits samples into train/test portions.
var SplitWindows = dataset.Split

// Streaming deployment and operations.
type (
	// Processor is the incremental pipeline: push events, stream matches.
	Processor = core.Processor
	// DriftMonitor audits a deployed filter for accuracy degradation
	// (concept drift, Section 4.3) on cheap reservoir samples.
	DriftMonitor = core.DriftMonitor
	// DriftOptions configures audit cadence and thresholds.
	DriftOptions = core.DriftOptions
)

// NewDriftMonitor builds a drift monitor for a deployed filter.
var NewDriftMonitor = core.NewDriftMonitor

// Selection strategies: the engine also implements the cheaper classical
// policies for SEQ-of-primitives patterns (set Pattern.Strategy).
const (
	// SkipTillAnyMatch is the paper's policy: every combination matches.
	SkipTillAnyMatch = pattern.SkipTillAnyMatch
	// SkipTillNextMatch advances each partial with the first qualifying event.
	SkipTillNextMatch = pattern.SkipTillNextMatch
	// StrictContiguity requires adjacent events.
	StrictContiguity = pattern.StrictContiguity
)

// Multi-pattern shared evaluation (MCEP): several sequence patterns with
// common prefixes share one partial-match trie.
type (
	// MultiEngine evaluates several SEQ patterns over a shared prefix trie.
	MultiEngine = mcep.Engine
	// MultiMatch tags a match with the pattern that produced it.
	MultiMatch = mcep.Match
)

// NewMultiEngine builds a shared multi-pattern engine.
var NewMultiEngine = mcep.New

// RunMulti evaluates a stream against several patterns with shared state.
var RunMulti = mcep.Run
